"""Fault-injection layer: determinism, replay, recovery, and schedules.

Covers the :mod:`repro.faults` plan mechanics, every injection site's
behaviour (resize aborts with rollback, stash degradation, lock stalls,
CAS storms, allocation failures), the bit-identical guarantee with
faults disabled, and a schedule-exploration sweep of the voter protocol
under injected lock interleavings.
"""

import numpy as np
import pytest

from .conftest import unique_keys
from repro.core.analysis import check_invariants
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.errors import (CapacityError, InvalidConfigError, ResizeError,
                          StashOverflowError)
from repro.faults import (DEFAULT_CHAOS_RATES, FAULT_SITES, NO_FAULTS,
                          FaultPlan, default_chaos_plan)
from repro.gpusim.atomics import AtomicMemory
from repro.gpusim.kernel import LockArbiter
from repro.gpusim.memory_manager import DeviceMemoryManager
from repro.kernels.insert import run_voter_insert_kernel


def full_state(table: DyCuckooTable):
    """Bit-exact observable state of a table (for identity assertions)."""
    stash_codes, stash_values = table.stash.export_entries()
    return (
        len(table),
        [(st.n_buckets, st.size, st.keys.tobytes(), st.values.tobytes())
         for st in table.subtables],
        table.stats.snapshot(),
        sorted(zip(stash_codes.tolist(), stash_values.tolist())),
    )


def run_mixed_workload(table: DyCuckooTable, seed: int = 5,
                       batches: int = 12, batch: int = 120) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(batches):
        keys = rng.integers(0, 800, batch).astype(np.uint64)
        table.insert(keys, keys * np.uint64(3))
        table.find(rng.integers(0, 800, batch // 2).astype(np.uint64))
        table.delete(rng.integers(0, 800, batch // 3).astype(np.uint64))


class TestFaultPlanMechanics:
    def test_same_seed_fires_identically(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan(seed=7, rates={"atomics.cas": 0.3})
            fired = [plan.fire("atomics.cas") is not None
                     for _ in range(200)]
            decisions.append(fired)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_interleaving_independence(self):
        # Decisions depend on (seed, site, index) only, not on how other
        # sites' invocations interleave.
        solo = FaultPlan(seed=3, rates={"lock.acquire": 0.5})
        solo_fires = [solo.fire("lock.acquire") is not None
                      for _ in range(50)]
        mixed = FaultPlan(seed=3, rates={"lock.acquire": 0.5})
        mixed_fires = []
        for _ in range(50):
            mixed.fire("atomics.cas")
            mixed_fires.append(mixed.fire("lock.acquire") is not None)
            mixed.fire("insert.evict")
        assert solo_fires == mixed_fires

    def test_script_round_trip(self):
        plan = FaultPlan(seed=11, rates={site: 0.2 for site in FAULT_SITES})
        for i in range(100):
            plan.fire(FAULT_SITES[i % len(FAULT_SITES)])
        assert plan.fired
        replay = FaultPlan.from_script(plan.script_json())
        for i in range(100):
            replay.fire(FAULT_SITES[i % len(FAULT_SITES)])
        assert replay.fired == plan.fired

    def test_storm_arms_consecutive_failures(self):
        plan = FaultPlan(seed=0, rates={"atomics.cas": 0.05},
                         storms={"atomics.cas": 4})
        fired = [plan.fire("atomics.cas") is not None for _ in range(400)]
        # Every probabilistic fire must be followed by 3 forced fires.
        i = 0
        storms_seen = 0
        while i < len(fired):
            if fired[i]:
                assert all(fired[i:i + 4][:max(0, len(fired) - i)][:4]) or \
                    i + 4 > len(fired)
                storms_seen += 1
                i += 4
            else:
                i += 1
        assert storms_seen >= 1

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            FaultPlan(rates={"no.such.site": 0.1})
        with pytest.raises(InvalidConfigError):
            FaultPlan(rates={"atomics.cas": 1.5})
        with pytest.raises(InvalidConfigError):
            FaultPlan(storms={"atomics.cas": 0})
        with pytest.raises(InvalidConfigError):
            FaultPlan.from_script({"fired": [["no.such.site", 0, 1]]})
        with pytest.raises(InvalidConfigError):
            default_chaos_plan(intensity=-1.0)

    def test_no_faults_is_inert(self):
        assert NO_FAULTS.enabled is False
        assert NO_FAULTS.fire("atomics.cas") is None
        assert NO_FAULTS.fired == []

    def test_default_chaos_plan_covers_every_rate_site(self):
        plan = default_chaos_plan(seed=1, intensity=2.0)
        assert set(plan.rates) == set(DEFAULT_CHAOS_RATES)
        assert all(0.0 <= r <= 1.0 for r in plan.rates.values())

    def test_splitmix_array_matches_scalar(self):
        """The vectorized hash is bit-identical to the scalar draw the
        per-invocation path uses — the invariant the fault-window fast
        path rests on."""
        from repro.faults import _splitmix, _splitmix_array

        xs = np.concatenate([
            np.arange(0, 512, dtype=np.uint64),
            np.array([2**64 - 1, 2**63, 0x9E3779B97F4A7C15],
                     dtype=np.uint64),
        ])
        vec = _splitmix_array(xs)
        with np.errstate(over="ignore"):
            scalar = np.array([_splitmix(int(x)) for x in xs],
                              dtype=np.uint64)
        assert np.array_equal(vec, scalar)

    def test_window_may_fire_is_exact(self):
        """``False`` from the window check guarantees every decision in
        the window is a no-fire: walking the window with fire() must
        produce no faults and leave identical counters to advance()."""
        site = "lock.acquire"
        for seed in range(20):
            probe = FaultPlan(seed=seed, rates={site: 0.1})
            walked = FaultPlan(seed=seed, rates={site: 0.1})
            jumped = FaultPlan(seed=seed, rates={site: 0.1})
            for _ in range(40):
                window = 7
                may = probe.window_may_fire(site, window)
                fired_in_window = False
                for _ in range(window):
                    if walked.fire(site) is not None:
                        fired_in_window = True
                if not may:
                    assert not fired_in_window
                    jumped.advance(site, window)
                else:
                    for _ in range(window):
                        jumped.fire(site)
                probe.advance(site, window)
                assert jumped.invocations() == walked.invocations()
            assert jumped.fired == walked.fired

    def test_window_may_fire_respects_armed_storms(self):
        site = "atomics.cas"
        plan = FaultPlan(seed=0, rates={site: 0.0}, storms={site: 3})
        assert plan.window_may_fire(site, 8) is False
        plan._armed[site] = 2  # a storm mid-flight forces the slow path
        assert plan.window_may_fire(site, 8) is True

    def test_window_edge_cases(self):
        plan = FaultPlan(seed=4, rates={"lock.stall": 0.5})
        assert plan.window_may_fire("lock.stall", 0) is False
        before = dict(plan.invocations())
        plan.advance("lock.stall", 0)
        assert plan.invocations() == before
        # A scripted plan windows on exact indices.
        scripted = FaultPlan.from_script(
            {"seed": 0, "fired": [["lock.stall", 5, 2]]})
        assert scripted.window_may_fire("lock.stall", 5) is False
        scripted.advance("lock.stall", 5)
        assert scripted.window_may_fire("lock.stall", 1) is True
        fault = scripted.fire("lock.stall")
        assert fault is not None and fault.index == 5 and fault.param == 2


class TestResizeAborts:
    @pytest.mark.parametrize("stage", ["trigger", "plan", "rehash"])
    def test_upsize_abort_leaves_state_unchanged(self, small_table, stage):
        keys = unique_keys(200, seed=1)
        small_table.insert(keys, keys)
        before = full_state(small_table)
        small_table.set_fault_plan(FaultPlan.from_script(
            {"fired": [[f"resize.abort.{stage}", 0, 1]]}))
        with pytest.raises(ResizeError, match="injected resize abort"):
            small_table._resizer.upsize()
        small_table.set_fault_plan(None)
        after = full_state(small_table)
        # Storage identical; only the abort counter moved.
        assert after[0] == before[0] and after[1] == before[1]
        assert small_table.stats.resize_aborts == 1
        small_table.validate()
        # The next, un-faulted upsize works normally.
        small_table.upsize()
        assert small_table.stats.upsizes >= 1

    @pytest.mark.parametrize("stage", ["trigger", "plan", "rehash"])
    def test_downsize_abort_rolls_back(self, stage):
        # auto_resize=False so the deletes leave shrink headroom for a
        # manual downsize to reach the injected stage.
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=32, bucket_capacity=8, min_buckets=8,
            auto_resize=False))
        keys = unique_keys(120, seed=2)
        table.insert(keys, keys)
        table.delete(keys[:100])
        before = full_state(table)
        downsizes_before = table.stats.downsizes
        table.set_fault_plan(FaultPlan.from_script(
            {"fired": [[f"resize.abort.{stage}", 0, 1]]}))
        with pytest.raises(ResizeError, match="injected resize abort"):
            table._resizer.downsize()
        table.set_fault_plan(None)
        after = full_state(table)
        assert after[0] == before[0] and after[1] == before[1]
        assert table.stats.downsizes == downsizes_before
        table.validate()
        # The next, un-faulted downsize works normally.
        table.downsize()
        assert table.stats.downsizes == downsizes_before + 1

    def test_spill_abort_rolls_back_downsize(self):
        # A dense table whose downsize must spill residuals: find the
        # spill site actually being consulted, then assert rollback.
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=2,
                                min_buckets=4, auto_resize=False)
        table = DyCuckooTable(config)
        keys = unique_keys(40, seed=4)
        table.insert(keys, keys)
        plan = FaultPlan(seed=0, rates={"resize.abort.spill": 1.0})
        table.set_fault_plan(plan)
        before = full_state(table)
        spilled = False
        for _ in range(4):
            try:
                table._resizer.downsize()
            except ResizeError:
                if plan.invocations().get("resize.abort.spill"):
                    spilled = True
                    break
                raise
            before = full_state(table)
        assert spilled, "workload never produced downsize residuals"
        after = full_state(table)
        assert after[0] == before[0] and after[1] == before[1]
        table.validate()

    @pytest.mark.parametrize("stage", ["plan", "rehash", "spill"])
    def test_aborted_downsize_rolls_back_all_counters(self, stage):
        """An aborted downsize must leave *every* counter untouched.

        Regression: the rollback used to decrement only ``downsizes``,
        leaving ``rehashed_entries``/``residuals``/``bucket_reads``/
        ``bucket_writes`` inflated by work that was undone — the cost
        model would then charge simulated time for traffic that never
        stuck.  The delta across an aborted downsize must be exactly
        one ``resize_aborts`` tick.
        """
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=2,
                                min_buckets=4, auto_resize=False)
        table = DyCuckooTable(config)
        keys = unique_keys(40, seed=4)
        table.insert(keys, keys)
        plan = FaultPlan(seed=0, rates={f"resize.abort.{stage}": 1.0})
        table.set_fault_plan(plan)
        before = table.stats.snapshot()
        aborted = False
        for _ in range(4):
            try:
                table._resizer.downsize()
            except ResizeError:
                aborted = True
                break
            before = table.stats.snapshot()
        assert aborted, "fault plan never aborted a downsize"
        delta = {name: count for name, count
                 in table.stats.delta(before).items() if count}
        assert delta == {"resize_aborts": 1}

    def test_enforce_bounds_survives_persistent_aborts(self, small_config):
        # Every resize aborts; batches must still complete and stay
        # differential-correct, just with theta temporarily off-bounds.
        table = DyCuckooTable(small_config)
        table.set_fault_plan(FaultPlan(seed=0, rates={
            "resize.abort.trigger": 1.0}))
        keys = unique_keys(150, seed=6)
        table.insert(keys, keys + np.uint64(9))
        _values, found = table.find(keys)
        assert bool(found.all())
        assert table.stats.resize_aborts > 0
        check_invariants(table)


class TestStashDegradation:
    def make_stashed_table(self, capacity: int = 256):
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8,
            stash_capacity=capacity))
        table.set_fault_plan(FaultPlan(seed=0, rates={
            "insert.evict": 1.0, "resize.abort.trigger": 1.0}))
        keys = unique_keys(32, seed=3)
        table.insert(keys, keys + np.uint64(1))
        return table, keys

    def test_exhausted_chain_with_aborted_upsize_stashes(self):
        table, keys = self.make_stashed_table()
        assert len(table.stash) == len(keys)
        assert table.stats.stash_pushes >= len(keys)
        assert len(table) == len(keys)
        check_invariants(table)

    def test_stashed_keys_findable_and_counted(self):
        table, keys = self.make_stashed_table()
        values, found = table.find(keys)
        assert bool(found.all())
        assert np.array_equal(values, keys + np.uint64(1))
        assert table.stats.stash_hits == len(keys)

    def test_stashed_keys_updatable_and_deletable(self):
        table, keys = self.make_stashed_table()
        table.insert(keys[:5], np.full(5, 77, dtype=np.uint64))
        values, found = table.find(keys[:5])
        assert bool(found.all()) and bool((values == 77).all())
        removed = table.delete(keys[:10])
        assert bool(removed.all())
        assert len(table) == len(keys) - 10

    def test_drain_back_after_successful_resize(self):
        table, keys = self.make_stashed_table()
        table.set_fault_plan(None)  # recovery: faults stop
        table.upsize()              # completes, then drains the stash
        assert len(table.stash) == 0
        assert table.stats.stash_drained == len(keys)
        values, found = table.find(keys)
        assert bool(found.all())
        assert np.array_equal(values, keys + np.uint64(1))
        table.validate()

    def test_stash_overflow_raises(self):
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8,
            stash_capacity=4))
        table.set_fault_plan(FaultPlan(seed=0, rates={
            "insert.evict": 1.0, "resize.abort.trigger": 1.0}))
        keys = unique_keys(32, seed=3)
        with pytest.raises(StashOverflowError, match="stash_capacity=4"):
            table.insert(keys, keys)
        assert isinstance(StashOverflowError("x"), CapacityError)

    def test_genuine_capacity_errors_unchanged(self):
        # auto_resize=False stalls and ceiling hits must NOT be absorbed
        # by the stash even with a fault plan attached.
        static = DyCuckooTable(DyCuckooConfig(
            initial_buckets=8, bucket_capacity=2, auto_resize=False,
            min_buckets=8, max_eviction_rounds=8))
        static.set_fault_plan(FaultPlan(seed=0, rates={}))
        with pytest.raises(CapacityError, match="auto_resize disabled"):
            static.insert(unique_keys(200, seed=8),
                          np.zeros(200, dtype=np.uint64))
        assert len(static.stash) == 0

        capped = DyCuckooTable(DyCuckooConfig(
            initial_buckets=8, bucket_capacity=4, min_buckets=8,
            max_total_slots=4 * 8 * 4))
        capped.set_fault_plan(FaultPlan(seed=0, rates={}))
        with pytest.raises(CapacityError, match="max_total_slots"):
            capped.insert(unique_keys(400, seed=9),
                          np.zeros(400, dtype=np.uint64))


class TestBitIdenticalWhenDisabled:
    def test_full_state_identical_across_mixed_workload(self, small_config):
        plain = DyCuckooTable(small_config)
        gated = DyCuckooTable(small_config)
        # An *enabled* plan whose rates never fire: every hook runs, no
        # fault fires — state must still be bit-identical to a table
        # that never saw the fault layer.
        gated.set_fault_plan(FaultPlan(seed=123, rates={}))
        run_mixed_workload(plain)
        run_mixed_workload(gated)
        assert full_state(plain) == full_state(gated)

    def test_zero_intensity_chaos_plan_is_identity(self, small_config):
        plain = DyCuckooTable(small_config)
        gated = DyCuckooTable(small_config)
        gated.set_fault_plan(default_chaos_plan(seed=5, intensity=0.0))
        run_mixed_workload(plain, seed=21)
        run_mixed_workload(gated, seed=21)
        assert full_state(plain) == full_state(gated)
        assert gated.faults.fired == []


class TestGpusimFaultSites:
    def test_atomic_cas_injected_failure(self):
        memory = AtomicMemory(4, faults=FaultPlan.from_script(
            {"fired": [["atomics.cas", 0, 1]]}))
        old = memory.atomic_cas(2, 0, 9)
        assert old != 0                      # observed a losing race
        assert int(memory.words[2]) == 0     # nothing written
        assert memory.injected_failures == 1
        assert memory.atomic_cas(2, 0, 9) == 0
        assert int(memory.words[2]) == 9     # next attempt wins

    def test_lock_arbiter_stall_accounting(self):
        plan = FaultPlan.from_script({"fired": [["lock.stall", 0, 2]]})
        arbiter = LockArbiter(faults=plan)
        assert not arbiter.try_acquire(7)    # phantom holder installed
        assert arbiter.injected_stalls == 1
        assert not arbiter.try_acquire(7)    # still stalled
        arbiter.tick()
        assert not arbiter.try_acquire(7)    # one round left
        arbiter.tick()
        assert arbiter.try_acquire(7)        # stall expired
        assert arbiter.acquisitions == 1
        assert arbiter.conflicts == 3

    def test_lock_arbiter_injected_acquire_failure(self):
        plan = FaultPlan.from_script({"fired": [["lock.acquire", 0, 1]]})
        arbiter = LockArbiter(faults=plan)
        assert not arbiter.try_acquire(3)
        assert arbiter.injected_failures == 1
        assert arbiter.try_acquire(3)        # free again next attempt

    def test_end_round_ages_stalls(self):
        plan = FaultPlan.from_script({"fired": [["lock.stall", 0, 1]]})
        arbiter = LockArbiter(faults=plan)
        assert not arbiter.try_acquire(1)
        arbiter.end_round()
        assert arbiter.try_acquire(1)

    def test_memory_manager_injected_alloc_failure(self):
        manager = DeviceMemoryManager(faults=FaultPlan.from_script(
            {"fired": [["memory.alloc", 0, 1]]}))
        with pytest.raises(CapacityError, match="injected allocation"):
            manager.set_allocation("table", 1_000_000)
        assert manager.resident_bytes == 0   # nothing mutated
        assert manager.injected_failures == 1
        manager.set_allocation("table", 1_000_000)
        assert manager.resident_bytes == 1_000_000

    def test_memory_manager_shrink_never_faults(self):
        manager = DeviceMemoryManager(faults=FaultPlan(seed=0, rates={
            "memory.alloc": 1.0}))
        with pytest.raises(CapacityError):
            manager.set_allocation("table", 500)
        manager.faults = NO_FAULTS
        manager.set_allocation("table", 500)
        manager.faults = FaultPlan(seed=0, rates={"memory.alloc": 1.0})
        manager.set_allocation("table", 100)  # shrink: no fault consulted
        assert manager.resident_bytes == 100


class TestVoterScheduleExploration:
    """Enumerate injected lock interleavings over a 3-warp insert kernel.

    For every schedule: no insert may be lost, the kernel must converge
    (no deadlock), and the revote accounting must surface the injected
    conflicts in the kernel metrics.
    """

    KEYS = 96  # three full warps

    def _fresh_table(self):
        return DyCuckooTable(DyCuckooConfig(
            initial_buckets=64, bucket_capacity=8, min_buckets=8,
            auto_resize=False))

    @pytest.mark.parametrize("site", ["lock.stall", "lock.acquire"])
    def test_single_fault_schedules(self, site):
        keys = unique_keys(self.KEYS, seed=11)
        for index in range(10):
            table = self._fresh_table()
            plan = FaultPlan.from_script(
                {"fired": [[site, index, 3]]})
            table.set_fault_plan(plan)
            result = run_voter_insert_kernel(table, keys,
                                             keys * np.uint64(2))
            assert result.completed_ops == self.KEYS, \
                f"lost inserts with {site}@{index}"
            _values, found = table.find(keys)
            assert bool(found.all())
            fired = plan.fired_by_site().get(site, 0)
            assert result.lock_conflicts >= fired

    def test_stall_storm_schedule(self):
        keys = unique_keys(self.KEYS, seed=12)
        table = self._fresh_table()
        plan = FaultPlan(seed=9, rates={"lock.stall": 0.2},
                         params={"lock.stall": 5})
        table.set_fault_plan(plan)
        result = run_voter_insert_kernel(table, keys, keys)
        assert result.completed_ops == self.KEYS
        _values, found = table.find(keys)
        assert bool(found.all())
        stalls = plan.fired_by_site().get("lock.stall", 0)
        assert stalls > 0, "storm never fired — raise the rate"
        # Each 5-round stall forces at least one extra revote round.
        assert result.lock_conflicts >= stalls

    def test_voter_vs_spin_both_survive_stalls(self):
        from repro.kernels.insert import run_spin_insert_kernel

        keys = unique_keys(64, seed=13)
        for runner in (run_voter_insert_kernel, run_spin_insert_kernel):
            table = self._fresh_table()
            table.set_fault_plan(FaultPlan(seed=4, rates={
                "lock.stall": 0.1, "lock.acquire": 0.2}))
            result = runner(table, keys, keys)
            assert result.completed_ops == len(keys)
            _values, found = table.find(keys)
            assert bool(found.all())
