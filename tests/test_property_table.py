"""Property-based tests: DyCuckoo versus a dict reference model.

Hypothesis drives random batched operation sequences against both the
table and a plain Python dict; after every batch the two must agree on
membership and values, the structural invariants must hold, and the
filled factor must respect the configured bounds whenever the table had
a chance to enforce them.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable

KEY = st.integers(min_value=0, max_value=200)
VALUE = st.integers(min_value=0, max_value=1 << 32)


op_strategy = st.one_of(
    st.tuples(st.just("insert"),
              st.lists(st.tuples(KEY, VALUE), min_size=1, max_size=40)),
    st.tuples(st.just("delete"), st.lists(KEY, min_size=1, max_size=40)),
    st.tuples(st.just("find"), st.lists(KEY, min_size=1, max_size=40)),
)


def apply_batch(table: DyCuckooTable, model: dict, op) -> None:
    kind, payload = op
    if kind == "insert":
        keys = np.array([k for k, _ in payload], dtype=np.uint64)
        values = np.array([v for _, v in payload], dtype=np.uint64)
        table.insert(keys, values)
        for k, v in payload:
            model[k] = v
    elif kind == "delete":
        keys = np.array(payload, dtype=np.uint64)
        removed = table.delete(keys)
        expected_removed = 0
        seen = set()
        for k in payload:
            if k in model and k not in seen:
                expected_removed += 1
            seen.add(k)
            model.pop(k, None)
        assert int(removed.sum()) == expected_removed
    else:
        keys = np.array(payload, dtype=np.uint64)
        values, found = table.find(keys)
        for i, k in enumerate(payload):
            assert bool(found[i]) == (k in model)
            if k in model:
                assert int(values[i]) == model[k]


class TestTableAgainstModel:
    @given(st.lists(op_strategy, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_batches_match_dict(self, ops):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=4,
                                             min_buckets=8))
        model: dict = {}
        for op in ops:
            apply_batch(table, model, op)
            assert len(table) == len(model)
        table.validate()
        if model:
            keys = np.array(sorted(model), dtype=np.uint64)
            values, found = table.find(keys)
            assert found.all()
            assert [int(v) for v in values] == [model[int(k)] for k in keys]

    @given(st.lists(op_strategy, min_size=1, max_size=15),
           st.sampled_from([2, 3, 4]))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_for_various_d(self, ops, d):
        table = DyCuckooTable(DyCuckooConfig(num_tables=d, initial_buckets=8,
                                             bucket_capacity=4,
                                             min_buckets=8))
        model: dict = {}
        for op in ops:
            apply_batch(table, model, op)
            table.validate()
            # Beta bound holds after every public batch (alpha may be
            # unreachable when all subtables sit at min size).
            assert table.load_factor <= table.config.beta + 1e-9

    @given(st.lists(st.tuples(KEY, VALUE), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_bulk_insert_then_full_scan(self, pairs):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=4))
        keys = np.array([k for k, _ in pairs], dtype=np.uint64)
        values = np.array([v for _, v in pairs], dtype=np.uint64)
        table.insert(keys, values)
        model = {k: v for k, v in pairs}  # last wins, same as the table
        assert len(table) == len(model)
        out_keys, out_values = table.items()
        assert {int(k): int(v) for k, v in zip(out_keys, out_values)} == model
