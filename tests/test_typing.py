"""Strict-typing gate for the sanitizer package.

CI runs the real ``mypy`` job (config in ``pyproject.toml``:
``disallow_untyped_defs`` over ``repro.sanitizer.*``, standard checking
over ``repro.core`` and ``repro.kernels``).  The container running the
unit tests does not ship mypy, so this module enforces the part of the
gate that matters most — every hook signature the kernels call is fully
annotated — with a plain AST sweep that runs everywhere, and defers the
full semantic check to mypy when it is importable.
"""

import ast
import os

import pytest

import repro.sanitizer

SANITIZER_DIR = os.path.dirname(repro.sanitizer.__file__)


def _defs(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _unannotated(node):
    """Parameter names (or "<return>") missing an annotation."""
    args = node.args
    missing = []
    named = args.posonlyargs + args.args + args.kwonlyargs
    for arg in named:
        if arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append("*" + star.arg)
    if node.returns is None:
        missing.append("<return>")
    return missing


class TestAnnotationGate:
    def test_every_sanitizer_def_is_fully_annotated(self):
        """disallow_untyped_defs, enforced without mypy on the box."""
        offenders = []
        for dirpath, _dirnames, filenames in os.walk(SANITIZER_DIR):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
                for node in _defs(tree):
                    missing = _unannotated(node)
                    if missing:
                        offenders.append(
                            f"{filename}:{node.lineno} {node.name}"
                            f" missing {missing}")
        assert offenders == [], "\n".join(offenders)

    def test_mypy_config_covers_the_gate_packages(self):
        root = os.path.dirname(os.path.dirname(SANITIZER_DIR))
        pyproject = os.path.join(os.path.dirname(root), "pyproject.toml")
        with open(pyproject, encoding="utf-8") as handle:
            text = handle.read()
        assert "[tool.mypy]" in text
        for pkg in ("repro.sanitizer", "repro.core", "repro.kernels"):
            assert pkg in text, pkg
        assert "disallow_untyped_defs" in text

    def test_mypy_semantic_check_when_available(self):
        mypy_api = pytest.importorskip("mypy.api")
        stdout, stderr, status = mypy_api.run(
            ["--no-error-summary", "-p", "repro.sanitizer"])
        assert status == 0, stdout + stderr
