"""Tests for the SlabHash chaining baseline."""

import numpy as np
import pytest

from repro.baselines.slab import MAX_SLAB_KEY, SlabHashTable
from repro.errors import InvalidConfigError, InvalidKeyError

from .conftest import unique_keys


class TestBasicOperations:
    def test_insert_find_delete(self):
        table = SlabHashTable(n_buckets=64)
        keys = unique_keys(2000, seed=1)
        table.insert(keys, keys * 2)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))
        removed = table.delete(keys[:500])
        assert removed.all()
        table.validate()
        _, found = table.find(keys)
        assert not found[:500].any()
        assert found[500:].all()

    def test_upsert(self):
        table = SlabHashTable(n_buckets=16)
        keys = unique_keys(100, seed=2)
        table.insert(keys, keys)
        table.insert(keys, keys + np.uint64(3))
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys + np.uint64(3))
        assert len(table) == 100

    def test_duplicate_batch_last_wins(self):
        table = SlabHashTable(n_buckets=8)
        table.insert(np.array([5, 5], dtype=np.uint64),
                     np.array([1, 2], dtype=np.uint64))
        assert len(table) == 1
        values, _ = table.find(np.array([5], dtype=np.uint64))
        assert values[0] == 2

    def test_duplicate_delete_counted_once(self):
        table = SlabHashTable(n_buckets=8)
        table.insert(np.array([5], dtype=np.uint64),
                     np.array([1], dtype=np.uint64))
        removed = table.delete(np.array([5, 5], dtype=np.uint64))
        assert removed.tolist() == [True, False]
        assert len(table) == 0

    def test_rejects_reserved_keys(self):
        table = SlabHashTable(n_buckets=8)
        with pytest.raises(InvalidKeyError):
            table.insert(np.array([MAX_SLAB_KEY + 1], dtype=np.uint64),
                         np.array([0], dtype=np.uint64))

    def test_rejects_bad_buckets(self):
        with pytest.raises(InvalidConfigError):
            SlabHashTable(n_buckets=0)


class TestSymbolicDeletion:
    def test_delete_leaves_memory_allocated(self):
        """Symbolic deletion never shrinks the structure (weakness #2)."""
        table = SlabHashTable(n_buckets=32)
        keys = unique_keys(2000, seed=3)
        table.insert(keys, keys)
        slots_before = table.total_slots
        table.delete(keys)
        assert table.total_slots == slots_before
        assert len(table) == 0
        assert table.load_factor == 0.0
        assert table.tombstones == 2000

    def test_fill_factor_decays_under_deletion(self):
        table = SlabHashTable(n_buckets=32)
        keys = unique_keys(3000, seed=4)
        table.insert(keys, keys)
        fill_full = table.load_factor
        table.delete(keys[:2500])
        assert table.load_factor < fill_full / 3

    def test_insert_reuses_tombstones(self):
        """More deletions make inserts cheaper (Figure 11's trend)."""
        table = SlabHashTable(n_buckets=16)
        keys = unique_keys(1000, seed=5)
        table.insert(keys, keys)
        table.delete(keys)
        slots_before = table.total_slots
        tombstones_before = table.tombstones
        fresh = unique_keys(1000, seed=6, low=1 << 40)
        table.insert(fresh, fresh)
        table.validate()
        # The bulk of tombstoned slots must be recycled...
        assert table.tombstones < tombstones_before / 5
        # ...so the structure barely grows (a few race-allocated slabs
        # at chain tails are acceptable; 10% is not).
        assert table.total_slots <= slots_before * 1.10

    def test_tombstone_does_not_stop_search(self):
        table = SlabHashTable(n_buckets=1)  # everything chains together
        keys = unique_keys(40, seed=7)
        table.insert(keys, keys)
        table.delete(keys[:10])
        _, found = table.find(keys[10:])
        assert found.all()


class TestChaining:
    def test_chains_grow_with_data(self):
        table = SlabHashTable(n_buckets=4)
        keys = unique_keys(400, seed=8)
        table.insert(keys, keys)
        lengths = table.chain_lengths()
        assert lengths.max() > 1
        assert lengths.sum() == table.allocated_slabs

    def test_access_cost_grows_with_chains(self):
        """Longer chains cost more accesses per FIND (weakness #3)."""
        small = SlabHashTable(n_buckets=256)
        big_chains = SlabHashTable(n_buckets=4)
        keys = unique_keys(1000, seed=9)
        for table in (small, big_chains):
            table.insert(keys, keys)
            table.stats.reset()
            table.find(keys)
        assert (big_chains.stats.random_accesses
                > small.stats.random_accesses)

    def test_allocator_reservation_is_overhead(self):
        """The dedicated pool shows up as reserved overhead (weakness #1)."""
        table = SlabHashTable(n_buckets=16, reserve_slabs=512)
        fp = table.memory_footprint()
        assert fp.overhead_bytes > 0
        keys = unique_keys(500, seed=10)
        table.insert(keys, keys)
        fp2 = table.memory_footprint()
        # Allocation converts reserved overhead into live slabs.
        assert fp2.overhead_bytes < fp.overhead_bytes

    def test_pool_growth_when_exhausted(self):
        table = SlabHashTable(n_buckets=4, reserve_slabs=4)
        keys = unique_keys(500, seed=11)
        table.insert(keys, keys)
        assert table.stats.full_rehashes > 0  # pool doubling events
        _, found = table.find(keys)
        assert found.all()
