"""Tests for the SIMT simulator substrate."""

import numpy as np
import pytest

from repro.errors import InvalidConfigError
from repro.gpusim import (GTX_1080, AtomicMemory, CostModel, DeviceSpec,
                          LockArbiter, Occupancy, RoundScheduler, V100,
                          WarpContext, atomic_batch_seconds,
                          atomic_throughput_mops,
                          coalesced_io_throughput_mops,
                          coalesced_transactions, mops)
from repro.gpusim.memory import MemoryTracker


class TestDeviceSpec:
    def test_gtx_1080_matches_paper(self):
        assert GTX_1080.num_sms == 20
        assert GTX_1080.cores_per_sm == 128
        assert GTX_1080.warp_size == 32
        assert GTX_1080.device_memory_bytes == 8 * 1024 ** 3

    def test_derived_quantities(self):
        assert GTX_1080.total_cores == 2560
        assert GTX_1080.max_resident_warps == 20 * 64
        assert GTX_1080.effective_bandwidth_bytes_per_s == pytest.approx(
            320e9 * 0.75)

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            DeviceSpec(warp_size=0)
        with pytest.raises(InvalidConfigError):
            DeviceSpec(mem_efficiency=1.5)


class TestCoalescing:
    def test_consecutive_addresses_one_transaction(self):
        addresses = np.arange(32) * 4  # 32 lanes x 4 bytes = 128 bytes
        assert coalesced_transactions(addresses) == 1

    def test_scattered_addresses_many_transactions(self):
        addresses = np.arange(32) * 128
        assert coalesced_transactions(addresses) == 32

    def test_straddling_access(self):
        # One 4-byte access crossing a line boundary costs two lines.
        assert coalesced_transactions(np.array([126])) == 2

    def test_empty(self):
        assert coalesced_transactions(np.array([], dtype=np.int64)) == 0

    def test_bucket_layout_coalesces(self):
        """A 32x4-byte bucket is exactly one 128-byte transaction.

        This is the property Figure 2's layout is designed around.
        """
        bucket_base = 17 * 128
        addresses = bucket_base + np.arange(32) * 4
        assert coalesced_transactions(addresses) == 1

    def test_tracker_accumulates(self):
        tracker = MemoryTracker()
        tracker.bucket_access(3)
        tracker.random_access(2)
        assert tracker.transactions == 5
        assert tracker.bytes_moved == 5 * 128
        assert tracker.seconds > 0
        tracker.reset()
        assert tracker.transactions == 0


class TestWarpContext:
    def test_ballot_and_ffs(self):
        ctx = WarpContext(0)
        pred = np.zeros(32, dtype=bool)
        pred[[3, 7, 31]] = True
        mask = ctx.ballot(pred)
        assert mask == (1 << 3) | (1 << 7) | (1 << 31)
        assert ctx.ffs(mask) == 3
        assert ctx.ffs(0) == -1

    def test_ballot_shape_checked(self):
        ctx = WarpContext(0)
        with pytest.raises(InvalidConfigError):
            ctx.ballot(np.zeros(16, dtype=bool))

    def test_shfl(self):
        ctx = WarpContext(0)
        values = np.arange(32)
        assert ctx.shfl(values, 5) == 5
        with pytest.raises(InvalidConfigError):
            ctx.shfl(values, 32)

    def test_elect_leader(self):
        ctx = WarpContext(0)
        ctx.active[10] = True
        ctx.active[20] = True
        assert ctx.elect_leader() == 10
        ctx.active[:] = False
        assert ctx.elect_leader() == -1


class TestAtomics:
    def test_atomic_cas_semantics(self):
        mem = AtomicMemory(4)
        assert mem.atomic_cas(0, 0, 1) == 0    # success
        assert mem.atomic_cas(0, 0, 1) == 1    # failure, returns old
        assert mem.words[0] == 1

    def test_atomic_exch_semantics(self):
        mem = AtomicMemory(4)
        assert mem.atomic_exch(2, 9) == 0
        assert mem.atomic_exch(2, 5) == 9
        assert mem.words[2] == 5

    def test_round_conflict_counts(self):
        mem = AtomicMemory(4)
        mem.atomic_cas(1, 0, 1)
        mem.atomic_cas(1, 0, 1)
        mem.atomic_exch(3, 1)
        counts = mem.end_round()
        assert counts == {1: 2, 3: 1}
        assert mem.end_round() == {}

    def test_throughput_degrades_with_conflicts(self):
        """The Figure-5 shape: more same-address atomics, lower Mops."""
        t1 = atomic_throughput_mops(1 << 16, conflicts_per_address=1)
        t32 = atomic_throughput_mops(1 << 16, conflicts_per_address=32)
        t1024 = atomic_throughput_mops(1 << 16, conflicts_per_address=1024)
        assert t1 > t32 > t1024
        assert t1 / t1024 > 50  # severe degradation, as profiled

    def test_cas_slower_than_exch(self):
        cas = atomic_throughput_mops(1 << 16, 64, cas=True)
        exch = atomic_throughput_mops(1 << 16, 64, cas=False)
        assert exch > cas

    def test_coalesced_io_flat(self):
        """The coalesced-IO baseline does not depend on conflicts."""
        io = coalesced_io_throughput_mops(1 << 16)
        assert io > atomic_throughput_mops(1 << 16, 1024)

    def test_empty_batch(self):
        assert atomic_batch_seconds(np.array([])) == 0.0


class TestScheduler:
    class CountdownWarp:
        def __init__(self, n):
            self.remaining = n
            self.steps_seen = []

        def finished(self):
            return self.remaining == 0

        def step(self, round_index):
            self.steps_seen.append(round_index)
            self.remaining -= 1

    def test_runs_to_completion(self):
        warps = [self.CountdownWarp(3), self.CountdownWarp(5)]
        scheduler = RoundScheduler(warps)
        rounds = scheduler.run()
        assert rounds == 5
        assert warps[0].remaining == 0 and warps[1].remaining == 0

    def test_round_limit(self):
        warps = [self.CountdownWarp(100)]
        scheduler = RoundScheduler(warps, max_rounds=10)
        with pytest.raises(RuntimeError):
            scheduler.run()

    def test_callbacks_fire_in_order(self):
        events = []
        scheduler = RoundScheduler([self.CountdownWarp(2)])
        scheduler.run(before_round=lambda i: events.append(("b", i)),
                      after_round=lambda i: events.append(("a", i)))
        assert events == [("b", 0), ("a", 0), ("b", 1), ("a", 1)]


class TestLockArbiter:
    def test_mutual_exclusion(self):
        arb = LockArbiter()
        assert arb.try_acquire(5)
        assert not arb.try_acquire(5)
        assert arb.try_acquire(6)
        assert arb.acquisitions == 2
        assert arb.conflicts == 1

    def test_release_and_end_round(self):
        arb = LockArbiter()
        arb.try_acquire(1)
        arb.release(1)
        assert arb.try_acquire(1)
        arb.end_round()
        assert arb.try_acquire(1)


class TestOccupancy:
    def test_default_high_occupancy(self):
        occ = Occupancy()
        assert occ.warps_per_sm() == 64  # lean kernels hit the arch limit
        assert occ.resident_warps() == 64 * 20

    def test_register_pressure_reduces_occupancy(self):
        occ = Occupancy(registers_per_thread=128)
        assert occ.warps_per_sm() < 64

    def test_shared_memory_pressure(self):
        occ = Occupancy(shared_bytes_per_block=49152, threads_per_block=256)
        assert occ.warps_per_sm() <= 16

    def test_threads_must_be_warp_multiple(self):
        with pytest.raises(InvalidConfigError):
            Occupancy(threads_per_block=100).warps_per_sm()

    def test_v100_has_more_warps(self):
        assert (Occupancy(device=V100).resident_warps()
                > Occupancy(device=GTX_1080).resident_warps())


class TestCostModel:
    def test_more_transactions_cost_more(self):
        model = CostModel()
        cheap = model.batch_seconds({"bucket_reads": 1000}, 1000)
        pricey = model.batch_seconds({"bucket_reads": 10_000}, 1000)
        assert pricey > cheap

    def test_conflicts_cost_more_than_clean_locks(self):
        model = CostModel()
        clean = model.batch_seconds({"lock_acquisitions": 10_000}, 10_000)
        contended = model.batch_seconds(
            {"lock_acquisitions": 10_000, "lock_conflicts": 10_000}, 10_000)
        assert contended > clean

    def test_full_rehash_overhead(self):
        model = CostModel()
        without = model.batch_seconds({"bucket_reads": 100}, 100)
        with_rehash = model.batch_seconds(
            {"bucket_reads": 100, "full_rehashes": 1}, 100)
        assert with_rehash > without + 1e-5

    def test_overhead_scale(self):
        """Scaled experiments shrink fixed costs proportionally."""
        full = CostModel(overhead_scale=1.0)
        scaled = CostModel(overhead_scale=0.01)
        delta = {"full_rehashes": 2, "upsizes": 3, "eviction_rounds": 10}
        assert scaled.overhead_seconds(delta) == pytest.approx(
            full.overhead_seconds(delta) * 0.01)
        # Traffic costs are NOT scaled — they already shrank with the data.
        traffic = {"bucket_reads": 1000}
        assert scaled.memory_seconds(traffic) == full.memory_seconds(traffic)

    def test_mops_helper(self):
        assert mops(1_000_000, 1.0) == pytest.approx(1.0)
        assert mops(1_000_000, 0.0) == float("inf")

    def test_find_throughput_plausible(self):
        """1M two-bucket finds should land in the GPU hash-table regime
        (hundreds to a few thousand Mops), not orders off."""
        model = CostModel()
        rate = model.mops({"bucket_reads": 1_100_000}, 1_000_000)
        assert 200 < rate < 5000


class TestAtomicRoundAccounting:
    """Round-conflict accounting: grouping, clearing, and the injected
    vs real CAS-loss distinction the fault layer depends on."""

    def test_round_addresses_group_and_clear_per_round(self):
        mem = AtomicMemory(8)
        mem.atomic_cas(1, 0, 1)
        mem.atomic_exch(1, 0)
        mem.atomic_cas(5, 0, 1)
        assert mem._round_addresses == [1, 1, 5]
        assert mem.end_round() == {1: 2, 5: 1}
        assert mem._round_addresses == []
        # A new round accumulates from scratch.
        mem.atomic_cas(5, 1, 2)
        assert mem.end_round() == {5: 1}
        assert mem.ops == 4

    def test_injected_cas_failure_does_not_mutate(self):
        from repro.faults import FaultPlan
        mem = AtomicMemory(4, faults=FaultPlan(
            seed=0, rates={"atomics.cas": 1.0}))
        old = mem.atomic_cas(2, 0, 7)
        assert old != 0            # observed "someone else's" write
        assert mem.words[2] == 0   # ...but wrote nothing itself
        assert mem.injected_failures == 1
        assert mem.ops == 1
        # The failed op still lands in the round's conflict group.
        assert mem.end_round() == {2: 1}

    def test_real_cas_loss_is_not_an_injected_failure(self):
        mem = AtomicMemory(4)
        assert mem.atomic_cas(2, 0, 7) == 0   # winner
        assert mem.atomic_cas(2, 0, 9) == 7   # genuine lost race
        assert mem.injected_failures == 0
        assert mem.words[2] == 7
        assert mem.end_round() == {2: 2}

    def test_sanitizer_classifies_injected_and_counts_atomics(self):
        from repro.faults import FaultPlan
        from repro.sanitizer import Sanitizer
        san = Sanitizer()
        san.begin_kernel("atomics", locking=False)
        mem = AtomicMemory(4, faults=FaultPlan(
            seed=0, rates={"atomics.cas": 1.0}), sanitizer=san)
        mem.atomic_cas(0, 0, 1)
        mem.atomic_exch(0, 0)
        mem.end_round()
        san.end_kernel()
        assert san.ok
        assert san.stats["atomic_ops"] == 2
        assert san.stats["injected_events"] == 1
        assert mem.injected_failures == 1
