"""NULL_SANITIZER zero-overhead pin across migration-epoch paths.

The sanitizer hooks thread through the hottest code in the tree — the
kernels' access loops, the resize controller's epoch machinery, the
stash, and the memory manager.  The null-object contract is that a
table whose sanitizer is ``NULL_SANITIZER`` (the default) is
*bit-identical* to one that never heard of sanitization, and that an
*enabled* sanitizer observes without perturbing.  The sharpest place to
pin that is the mid-migration-epoch path: kernels running against a
partially-drained dual view, then across a downsize finalize (the
``use-after-retire`` retire point) — on both engines.
"""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.kernels import (run_delete_kernel, run_find_kernel,
                           run_voter_insert_kernel)
from repro.sanitizer import NULL_SANITIZER, Sanitizer

ENGINES = ("warp", "cohort")


def _keys(count, seed):
    rng = np.random.default_rng(seed)
    keys = rng.choice(np.arange(1, count * 8, dtype=np.uint64),
                      size=count, replace=False)
    return keys.astype(np.uint64)


def _epoch_workload(table, engine, seed):
    """Insert/find/delete across an open upsize epoch, a partial drain,
    and a finalized downsize epoch (the retire point)."""
    keys = _keys(96, seed)
    values = keys * np.uint64(3)
    half = len(keys) // 2
    results = []
    run_voter_insert_kernel(table, keys[:half], values[:half],
                            engine=engine)
    resizer = table._resizer
    resizer.open_upsize_epoch()
    run_voter_insert_kernel(table, keys[half:], values[half:],
                            engine=engine)
    results.append(run_find_kernel(table, keys, engine=engine))
    resizer.drain_migration(max_pairs=8)  # stays open: dual view
    results.append(run_delete_kernel(table, keys[::3], engine=engine))
    resizer.finalize_migration()
    resizer.open_downsize_epoch()
    results.append(run_find_kernel(table, keys, engine=engine))
    resizer.finalize_migration()  # retires the source view
    results.append(run_find_kernel(table, keys, engine=engine))
    return results


def _fresh_table(seed):
    return DyCuckooTable(DyCuckooConfig(
        initial_buckets=16, bucket_capacity=8, min_buckets=8,
        auto_resize=False, seed=seed))


def _flatten(results):
    out = []
    for result in results:
        if isinstance(result, tuple):
            out.extend(result)
        else:
            out.append(result)
    return out


class TestNullSanitizerBitIdentity:
    """The default NULL_SANITIZER must be invisible on epoch paths."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_null_matches_untouched_table(self, engine):
        plain = _fresh_table(seed=11)
        assert plain.sanitizer is NULL_SANITIZER
        results_plain = _epoch_workload(plain, engine, seed=11)

        nulled = _fresh_table(seed=11)
        nulled.set_sanitizer(Sanitizer())
        nulled.set_sanitizer(None)  # back to the shared null object
        assert nulled.sanitizer is NULL_SANITIZER
        results_nulled = _epoch_workload(nulled, engine, seed=11)

        for a, b in zip(_flatten(results_plain), _flatten(results_nulled)):
            assert np.array_equal(a, b)
        assert plain.to_dict() == nulled.to_dict()
        assert plain.stats.snapshot() == nulled.stats.snapshot()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_enabled_sanitizer_observes_without_perturbing(self, engine):
        plain = _fresh_table(seed=13)
        results_plain = _epoch_workload(plain, engine, seed=13)

        watched = _fresh_table(seed=13)
        san = watched.set_sanitizer(Sanitizer())
        results_watched = _epoch_workload(watched, engine, seed=13)

        for a, b in zip(_flatten(results_plain),
                        _flatten(results_watched)):
            assert np.array_equal(a, b)
        assert plain.to_dict() == watched.to_dict()
        assert plain.stats.snapshot() == watched.stats.snapshot()
        # The observer really ran: epoch retire + extent checks ticked,
        # and the clean workload stayed clean.
        assert san.ok, [str(v) for v in san.violations]
        assert san.stats["extent_checks"] > 0
        assert san.stats["retired_epochs"] == 1

    def test_engines_bit_identical_under_null_sanitizer(self):
        snapshots = {}
        for engine in ENGINES:
            table = _fresh_table(seed=17)
            _epoch_workload(table, engine, seed=17)
            snapshots[engine] = table.to_dict()
        assert snapshots["warp"] == snapshots["cohort"]

    def test_sanitizer_stats_conform_across_engines(self):
        stats = {}
        for engine in ENGINES:
            table = _fresh_table(seed=19)
            san = table.set_sanitizer(Sanitizer())
            _epoch_workload(table, engine, seed=19)
            assert san.ok, [str(v) for v in san.violations]
            stats[engine] = dict(san.stats)
        assert stats["warp"] == stats["cohort"]

    def test_null_sanitizer_all_passes_disabled(self):
        assert NULL_SANITIZER.enabled is False
        for flag in ("racecheck", "lockcheck", "memcheck", "initcheck",
                     "synccheck"):
            assert getattr(NULL_SANITIZER, flag) is False, flag

    def test_sanitizer_survives_the_pool_pickle_round_trip(self):
        """The process-pool shard executor ships tables by pickle; the
        default sanitizer must come back as the *same* singleton (the
        `is NULL_SANITIZER` gate) and an enabled one must come back
        functional with its per-table weak maps rebuilt."""
        import pickle

        assert pickle.loads(pickle.dumps(NULL_SANITIZER)) is NULL_SANITIZER
        table = _fresh_table(seed=23)
        clone = pickle.loads(pickle.dumps(table))
        assert clone.sanitizer is NULL_SANITIZER
        san = pickle.loads(pickle.dumps(Sanitizer()))
        assert san.enabled and san.ok
        san.on_epoch_retire(table, 0, old_rows=16, new_rows=8)
        assert san.stats["retired_epochs"] == 1
