"""Tests for the sharded front-end (:mod:`repro.shard`)."""

import numpy as np
import pytest

from repro.core.batch_ops import (OP_DELETE, OP_FIND, OP_INSERT,
                                  execute_mixed)
from repro.core.config import DyCuckooConfig, replace_config
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError
from repro.gpusim.device import GTX_1080, partition_device
from repro.shard import (ShardedDyCuckoo, simulate_shard_speedup,
                         speedup_for_table)
from repro.telemetry import Telemetry

from .conftest import unique_keys


def small_sharded(num_shards=4, **kw):
    defaults = dict(initial_buckets=8, min_buckets=8)
    defaults.update(kw)
    return ShardedDyCuckoo(num_shards=num_shards,
                           config=DyCuckooConfig(**defaults))


class TestConstruction:
    def test_interface(self):
        from repro.baselines.base import GpuHashTable

        table = small_sharded()
        assert isinstance(table, GpuHashTable)
        assert table.NAME == "ShardedDyCuckoo"
        assert len(table.shards) == 4

    @pytest.mark.parametrize("bad", [0, -1, 3, 6, 12])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(InvalidConfigError, match="power of two"):
            ShardedDyCuckoo(num_shards=bad)

    def test_shard_configs_length_checked(self):
        with pytest.raises(InvalidConfigError, match="4 entries"):
            ShardedDyCuckoo(num_shards=4,
                            shard_configs=[DyCuckooConfig()] * 3)

    def test_shards_use_distinct_hash_functions(self):
        table = small_sharded()
        constants = {(int(h.a), int(h.b), int(h.premix))
                     for shard in table.shards
                     for h in shard.table_hashes}
        # 4 shards x 4 subtables, all drawn from distinct seeds.
        assert len(constants) == 16


class TestRouting:
    def test_ids_in_range_and_deterministic(self):
        table = small_sharded(num_shards=8)
        keys = unique_keys(5000, seed=21)
        ids = table.shard_ids(keys)
        assert ids.min() >= 0 and ids.max() < 8
        assert np.array_equal(ids, table.shard_ids(keys))

    def test_single_shard_routes_everything_to_zero(self):
        table = small_sharded(num_shards=1)
        ids = table.shard_ids(unique_keys(100, seed=22))
        assert not ids.any()

    def test_reasonable_balance(self):
        table = small_sharded(num_shards=4)
        keys = unique_keys(20_000, seed=23)
        counts = np.bincount(table.shard_ids(keys), minlength=4)
        assert counts.min() > 0.8 * counts.mean()

    def test_stored_keys_route_home(self):
        table = small_sharded()
        keys = unique_keys(2000, seed=24)
        table.insert(keys, keys)
        table.validate()
        for idx, shard in enumerate(table.shards):
            shard_keys = shard.items()[0]
            assert bool((table.shard_ids(shard_keys) == idx).all())


class TestDifferentialEquality:
    """Acceptance: S=4 equals one table over a 10k-op mixed workload."""

    def _mixed_stream(self, total_ops: int, seed: int):
        rng = np.random.default_rng(seed)
        ops = rng.choice([OP_INSERT, OP_FIND, OP_DELETE], size=total_ops,
                         p=[0.5, 0.3, 0.2]).astype(np.int64)
        keys = rng.integers(1, 4000, size=total_ops).astype(np.uint64)
        values = rng.integers(1, 1 << 40, size=total_ops).astype(np.uint64)
        return ops, keys, values

    def test_10k_mixed_ops_match_single_table(self):
        sharded = small_sharded(num_shards=4)
        reference = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                                 min_buckets=8))
        ops, keys, values = self._mixed_stream(10_000, seed=25)
        for start in range(0, len(ops), 500):
            seg = slice(start, start + 500)
            got = sharded.execute_mixed(ops[seg], keys[seg], values[seg])
            want = execute_mixed(reference, ops[seg], keys[seg],
                                 values[seg])
            find_at = ops[seg] == OP_FIND
            assert np.array_equal(got.found[find_at], want.found[find_at])
            assert np.array_equal(got.values[find_at & got.found],
                                  want.values[find_at & want.found])
            delete_at = ops[seg] == OP_DELETE
            assert np.array_equal(got.removed[delete_at],
                                  want.removed[delete_at])
        sharded.validate()
        # Union of shard contents equals the reference contents.
        assert sharded.to_dict() == reference.to_dict()
        assert len(sharded) == len(reference)

    def test_homogeneous_batches_match(self):
        sharded = small_sharded(num_shards=4)
        reference = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                                 min_buckets=8))
        keys = unique_keys(5000, seed=26)
        for table in (sharded, reference):
            table.insert(keys, keys * np.uint64(2))
        s_values, s_found = sharded.find(keys)
        r_values, r_found = reference.find(keys)
        assert np.array_equal(s_found, r_found)
        assert np.array_equal(s_values, r_values)
        assert np.array_equal(sharded.delete(keys[:2500]),
                              reference.delete(keys[:2500]))
        assert sharded.to_dict() == reference.to_dict()

    def test_duplicate_key_batch_semantics_preserved(self):
        """Same shard per key => last-wins / first-occurrence carry over."""
        sharded = small_sharded()
        keys = np.array([5, 9, 5, 9, 5], dtype=np.uint64)
        values = np.array([1, 2, 3, 4, 5], dtype=np.uint64)
        sharded.insert(keys, values)
        assert sharded.to_dict() == {5: 5, 9: 4}
        removed = sharded.delete(np.array([5, 5, 9], dtype=np.uint64))
        assert removed.tolist() == [True, False, True]
        assert len(sharded) == 0


class TestPerShardResize:
    def test_shards_resize_independently(self):
        table = small_sharded(num_shards=4)
        keys = unique_keys(8000, seed=27)
        table.insert(keys, keys)
        upsizes = [shard.stats.upsizes for shard in table.shards]
        assert all(u > 0 for u in upsizes)
        # Deleting only one shard's keys downsizes only that shard.
        target = 2
        target_keys = keys[table.shard_ids(keys) == target]
        table.delete(target_keys)
        downsizes = [shard.stats.downsizes for shard in table.shards]
        assert downsizes[target] > 0
        assert all(d == 0 for i, d in enumerate(downsizes) if i != target)
        table.validate()

    def test_per_shard_bands(self):
        """shard_configs gives each shard its own [alpha, beta] band."""
        base = DyCuckooConfig(initial_buckets=8, min_buckets=8)
        tight = replace_config(base, alpha=0.55, beta=0.75, seed=99)
        table = ShardedDyCuckoo(
            num_shards=2, config=base, shard_configs=[base, tight])
        assert table.shards[0].config.beta == base.beta
        assert table.shards[1].config.beta == 0.75
        keys = unique_keys(4000, seed=28)
        table.insert(keys, keys)
        table.validate()
        for shard in table.shards:
            assert shard.load_factor <= shard.config.beta + 1e-9

    def test_resize_lock_fraction(self):
        assert small_sharded(num_shards=4).resize_lock_fraction() == 1 / 16
        assert small_sharded(num_shards=1).resize_lock_fraction() == 1 / 4


class TestRollups:
    def test_stats_merge_across_shards(self):
        table = small_sharded()
        keys = unique_keys(3000, seed=29)
        table.insert(keys, keys)
        table.find(keys)
        merged = table.stats
        assert merged.inserts == 3000
        assert merged.finds == 3000
        assert merged.inserts == sum(s.stats.inserts for s in table.shards)

    def test_memory_footprint_sums(self):
        table = small_sharded()
        keys = unique_keys(2000, seed=30)
        table.insert(keys, keys)
        footprint = table.memory_footprint()
        parts = [shard.memory_footprint() for shard in table.shards]
        assert footprint.live_entries == 2000 == len(table)
        assert footprint.total_slots == sum(p.total_slots for p in parts)
        assert footprint.total_bytes == sum(p.total_bytes for p in parts)
        assert table.total_slots == footprint.total_slots
        assert table.load_factor == pytest.approx(
            2000 / footprint.total_slots)

    def test_subtable_load_factors_alias(self):
        table = small_sharded(num_shards=4)
        table.insert(unique_keys(1000, seed=31), unique_keys(1000, seed=31))
        fills = table.subtable_load_factors
        assert fills == table.shard_load_factors
        assert len(fills) == 4 and all(0.0 < f <= 1.0 for f in fills)

    def test_telemetry_rollup(self):
        table = small_sharded()
        table.set_telemetry(Telemetry())
        keys = unique_keys(1500, seed=32)
        table.insert(keys, keys)
        table.find(keys)
        merged = table.merged_metrics()
        # Labelled per-shard copies plus aggregated roll-ups.
        assert "shard0.find.hits" in merged.counters
        roll = merged.counter("find.hits")
        assert roll.value == sum(
            merged.counter(f"shard{i}.find.hits").value for i in range(4))
        assert roll.value == 1500
        # The front-end's own dispatch spans land on the parent handle.
        assert len(table.telemetry.tracer.spans("shard.insert")) == 1

    def test_validate_detects_misrouted_key(self):
        table = small_sharded()
        keys = unique_keys(100, seed=33)
        table.insert(keys, keys)
        # Force one key into the wrong shard behind the router's back.
        wrong = (int(table.shard_ids(keys[:1])[0]) + 1) % 4
        table.shards[wrong].insert(keys[:1], keys[:1])
        with pytest.raises(AssertionError,
                           match="routed to|duplicate key"):
            table.validate()


class TestCostModel:
    def test_partition_device_shares_resources(self):
        group = partition_device(GTX_1080, 4)
        assert group.num_sms == GTX_1080.num_sms // 4
        assert group.mem_bandwidth_gbps == GTX_1080.mem_bandwidth_gbps / 4
        assert partition_device(GTX_1080, 1) is GTX_1080
        with pytest.raises(InvalidConfigError):
            partition_device(GTX_1080, 0)

    def test_more_groups_than_sms_clamps(self):
        group = partition_device(GTX_1080, 64)
        assert group.num_sms == 1
        assert group.mem_bandwidth_gbps == pytest.approx(
            GTX_1080.mem_bandwidth_gbps / 64)

    def test_single_shard_is_serial_schedule(self):
        table = small_sharded(num_shards=1)
        before = [stats.snapshot() for stats in table.shard_stats()]
        keys = unique_keys(2000, seed=34)
        table.insert(keys, keys)
        report = speedup_for_table(table, before, [len(keys)])
        assert report.speedup == pytest.approx(1.0)
        assert report.parallel_seconds == pytest.approx(
            report.serial_seconds)

    def test_sharding_speeds_up_but_sublinearly(self):
        table = small_sharded(num_shards=4)
        before = [stats.snapshot() for stats in table.shard_stats()]
        keys = unique_keys(8000, seed=35)
        table.insert(keys, keys)
        table.find(keys)
        shard_ops = np.bincount(
            table.shard_ids(np.concatenate([keys, keys])),
            minlength=4).tolist()
        report = speedup_for_table(table, before, shard_ops)
        assert 1.0 < report.speedup < 4.0
        assert report.parallel_mops > report.serial_mops
        assert report.num_ops == 16_000
        assert report.resize_lock_fraction == 1 / 16
        payload = report.to_dict()
        assert payload["speedup"] == pytest.approx(report.speedup)

    def test_input_validation(self):
        with pytest.raises(InvalidConfigError, match="op counts"):
            simulate_shard_speedup([{}, {}], [1])
        with pytest.raises(InvalidConfigError, match="at least one"):
            simulate_shard_speedup([], [])
