"""Tests for the single-subtable resizing policy (Section IV)."""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.resize import _TableSnapshot
from repro.core.table import DyCuckooTable
from repro.errors import ResizeError

from .conftest import unique_keys


def filled_table(n_keys=2000, seed=1, **config_kwargs):
    defaults = dict(initial_buckets=16, bucket_capacity=8, min_buckets=8)
    defaults.update(config_kwargs)
    table = DyCuckooTable(DyCuckooConfig(**defaults))
    keys = unique_keys(n_keys, seed=seed)
    table.insert(keys, keys * 2)
    return table, keys


class TestUpsize:
    def test_upsize_targets_smallest(self):
        table, _ = filled_table()
        sizes_before = [st.n_buckets for st in table.subtables]
        smallest = int(np.argmin(sizes_before))
        table.upsize()
        sizes_after = [st.n_buckets for st in table.subtables]
        assert sizes_after[smallest] == 2 * sizes_before[smallest]

    def test_upsize_preserves_contents(self):
        table, keys = filled_table()
        table.upsize()
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_upsize_is_conflict_free(self):
        """Every entry lands in its old bucket or old bucket + old size."""
        table, _ = filled_table()
        target = int(np.argmin([st.n_buckets for st in table.subtables]))
        st = table.subtables[target]
        codes, _values, old_buckets = st.export_entries()
        old_n = st.n_buckets
        table.upsize()
        _codes2, _values2, new_buckets = st.export_entries()
        # Export order differs; verify per key via the hash directly.
        recomputed = table.table_hashes[target].bucket(codes, old_n * 2)
        old = table.table_hashes[target].bucket(codes, old_n)
        assert bool(np.all((recomputed == old) | (recomputed == old + old_n)))

    def test_upsize_halves_subtable_fill(self):
        table, _ = filled_table()
        target = int(np.argmin([st.n_buckets for st in table.subtables]))
        fill_before = table.subtables[target].filled_factor
        table.upsize()
        assert table.subtables[target].filled_factor == pytest.approx(
            fill_before / 2)


class TestDownsize:
    def test_downsize_targets_largest(self):
        table, _ = filled_table()
        table.upsize()   # make one table strictly larger
        sizes_before = [st.n_buckets for st in table.subtables]
        largest = int(np.argmax(sizes_before))
        table.delete(table.items()[0][:1500])  # make room
        sizes_mid = [st.n_buckets for st in table.subtables]
        if sizes_mid == sizes_before:  # no automatic downsize happened yet
            table.downsize()
            sizes_after = [st.n_buckets for st in table.subtables]
            assert sizes_after[largest] == sizes_before[largest] // 2

    def test_downsize_preserves_contents(self):
        table, keys = filled_table(n_keys=500)
        keep = keys[:100]
        table.delete(keys[100:])
        table.validate()
        before = len(table)
        # Force an explicit downsize regardless of automatic ones.
        try:
            table.downsize()
        except ResizeError:
            pass  # already at minimum everywhere
        table.validate()
        assert len(table) == before
        values, found = table.find(keep)
        assert found.all()
        assert np.array_equal(values, keep * np.uint64(2))

    def test_downsize_at_minimum_raises(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8,
                                             min_buckets=8))
        with pytest.raises(ResizeError):
            table.downsize()

    def test_residuals_relocated(self):
        """Residual spill keeps all entries findable and counted."""
        # Dense small table so merging buckets must overflow.
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=4,
                                             min_buckets=8,
                                             auto_resize=False))
        keys = unique_keys(140, seed=3)
        table.insert(keys, keys)
        before_residuals = table.stats.residuals
        table.downsize()
        table.validate()
        _, found = table.find(keys)
        assert found.all()
        # Not guaranteed every run produces residuals, but the counter
        # must never go backwards and the structure must stay intact.
        assert table.stats.residuals >= before_residuals


class TestBoundEnforcement:
    def test_fill_within_bounds_after_growth(self):
        table, _ = filled_table(n_keys=20_000)
        assert table.load_factor <= table.config.beta + 1e-9

    def test_fill_recovers_after_mass_delete(self):
        table, keys = filled_table(n_keys=20_000)
        table.delete(keys[:19_000])
        # Downsize loop: either back above alpha, or stuck at min size.
        at_min = all(st.n_buckets <= table.config.min_buckets
                     for st in table.subtables)
        assert table.load_factor >= table.config.alpha - 1e-9 or at_min

    def test_alpha_bound_respects_beta_projection(self):
        """Downsizing never overshoots past beta."""
        table, keys = filled_table(n_keys=20_000)
        table.delete(keys[:10_000])
        assert table.load_factor <= table.config.beta + 1e-9

    def test_upsizes_counted(self):
        # Insert in chunks so later upsizes move real entries (a single
        # bulk insert sizes the table proactively while it is empty).
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        keys = unique_keys(20_000, seed=1)
        for start in range(0, len(keys), 1000):
            chunk = keys[start:start + 1000]
            table.insert(chunk, chunk)
        assert table.stats.upsizes > 0
        assert table.stats.rehashed_entries > 0

    def test_anticipatory_upsize_extension(self):
        config = DyCuckooConfig(initial_buckets=16, bucket_capacity=8,
                                anticipatory_upsize=True)
        table = DyCuckooTable(config)
        keys = unique_keys(20_000, seed=5)
        table.insert(keys, keys)
        _, found = table.find(keys)
        assert found.all()
        table.validate()
        # After an anticipatory upsize run, fill sits at/below the
        # [alpha, beta] midpoint or within bounds; never above beta.
        assert table.load_factor <= config.beta + 1e-9


class TestSnapshot:
    def test_snapshot_restores_storage(self):
        table, keys = filled_table(n_keys=500)
        snapshot = _TableSnapshot(table)
        table.delete(keys[:250])
        table.upsize()
        snapshot.restore(table)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert len(table) == 500
