"""Tests for the single-subtable resizing policy (Section IV)."""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.resize import _TableSnapshot
from repro.core.table import DyCuckooTable, encode_keys
from repro.errors import ResizeError
from repro.faults import FaultPlan

from .conftest import unique_keys


def filled_table(n_keys=2000, seed=1, **config_kwargs):
    defaults = dict(initial_buckets=16, bucket_capacity=8, min_buckets=8)
    defaults.update(config_kwargs)
    table = DyCuckooTable(DyCuckooConfig(**defaults))
    keys = unique_keys(n_keys, seed=seed)
    table.insert(keys, keys * 2)
    return table, keys


class TestUpsize:
    def test_upsize_targets_smallest(self):
        table, _ = filled_table()
        sizes_before = [st.n_buckets for st in table.subtables]
        smallest = int(np.argmin(sizes_before))
        table.upsize()
        sizes_after = [st.n_buckets for st in table.subtables]
        assert sizes_after[smallest] == 2 * sizes_before[smallest]

    def test_upsize_preserves_contents(self):
        table, keys = filled_table()
        table.upsize()
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_upsize_is_conflict_free(self):
        """Every entry lands in its old bucket or old bucket + old size."""
        table, _ = filled_table()
        target = int(np.argmin([st.n_buckets for st in table.subtables]))
        st = table.subtables[target]
        codes, _values, old_buckets = st.export_entries()
        old_n = st.n_buckets
        table.upsize()
        _codes2, _values2, new_buckets = st.export_entries()
        # Export order differs; verify per key via the hash directly.
        recomputed = table.table_hashes[target].bucket(codes, old_n * 2)
        old = table.table_hashes[target].bucket(codes, old_n)
        assert bool(np.all((recomputed == old) | (recomputed == old + old_n)))

    def test_upsize_halves_subtable_fill(self):
        table, _ = filled_table()
        target = int(np.argmin([st.n_buckets for st in table.subtables]))
        fill_before = table.subtables[target].filled_factor
        table.upsize()
        assert table.subtables[target].filled_factor == pytest.approx(
            fill_before / 2)


class TestDownsize:
    def test_downsize_targets_largest(self):
        table, _ = filled_table()
        table.upsize()   # make one table strictly larger
        sizes_before = [st.n_buckets for st in table.subtables]
        largest = int(np.argmax(sizes_before))
        table.delete(table.items()[0][:1500])  # make room
        sizes_mid = [st.n_buckets for st in table.subtables]
        if sizes_mid == sizes_before:  # no automatic downsize happened yet
            table.downsize()
            sizes_after = [st.n_buckets for st in table.subtables]
            assert sizes_after[largest] == sizes_before[largest] // 2

    def test_downsize_preserves_contents(self):
        table, keys = filled_table(n_keys=500)
        keep = keys[:100]
        table.delete(keys[100:])
        table.validate()
        before = len(table)
        # Force an explicit downsize regardless of automatic ones.
        try:
            table.downsize()
        except ResizeError:
            pass  # already at minimum everywhere
        table.validate()
        assert len(table) == before
        values, found = table.find(keep)
        assert found.all()
        assert np.array_equal(values, keep * np.uint64(2))

    def test_downsize_at_minimum_raises(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8,
                                             min_buckets=8))
        with pytest.raises(ResizeError):
            table.downsize()

    def test_residuals_relocated(self):
        """Residual spill keeps all entries findable and counted."""
        # Dense small table so merging buckets must overflow.
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=4,
                                             min_buckets=8,
                                             auto_resize=False))
        keys = unique_keys(140, seed=3)
        table.insert(keys, keys)
        before_residuals = table.stats.residuals
        table.downsize()
        table.validate()
        _, found = table.find(keys)
        assert found.all()
        # Not guaranteed every run produces residuals, but the counter
        # must never go backwards and the structure must stay intact.
        assert table.stats.residuals >= before_residuals


class TestBoundEnforcement:
    def test_fill_within_bounds_after_growth(self):
        table, _ = filled_table(n_keys=20_000)
        assert table.load_factor <= table.config.beta + 1e-9

    def test_fill_recovers_after_mass_delete(self):
        table, keys = filled_table(n_keys=20_000)
        table.delete(keys[:19_000])
        # Downsize loop: either back above alpha, or stuck at min size.
        at_min = all(st.n_buckets <= table.config.min_buckets
                     for st in table.subtables)
        assert table.load_factor >= table.config.alpha - 1e-9 or at_min

    def test_alpha_bound_respects_beta_projection(self):
        """Downsizing never overshoots past beta."""
        table, keys = filled_table(n_keys=20_000)
        table.delete(keys[:10_000])
        assert table.load_factor <= table.config.beta + 1e-9

    def test_upsizes_counted(self):
        # Insert in chunks so later upsizes move real entries (a single
        # bulk insert sizes the table proactively while it is empty).
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        keys = unique_keys(20_000, seed=1)
        for start in range(0, len(keys), 1000):
            chunk = keys[start:start + 1000]
            table.insert(chunk, chunk)
        assert table.stats.upsizes > 0
        assert table.stats.rehashed_entries > 0

    def test_anticipatory_upsize_extension(self):
        config = DyCuckooConfig(initial_buckets=16, bucket_capacity=8,
                                anticipatory_upsize=True)
        table = DyCuckooTable(config)
        keys = unique_keys(20_000, seed=5)
        table.insert(keys, keys)
        _, found = table.find(keys)
        assert found.all()
        table.validate()
        # After an anticipatory upsize run, fill sits at/below the
        # [alpha, beta] midpoint or within bounds; never above beta.
        assert table.load_factor <= config.beta + 1e-9


class TestSnapshot:
    def test_snapshot_restores_storage(self):
        table, keys = filled_table(n_keys=500)
        snapshot = _TableSnapshot(table)
        table.delete(keys[:250])
        table.upsize()
        snapshot.restore(table)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert len(table) == 500

    def test_snapshot_restores_stash(self):
        """The snapshot must cover the overflow stash, not just storage.

        Regression: resize rollbacks taken while keys sat in the stash
        (e.g. an injected abort during a stash drain's upsize) used to
        restore subtable arrays only, resurrecting or dropping stashed
        keys relative to the captured moment.
        """
        table, keys = filled_table(n_keys=300)
        extra = unique_keys(40, seed=77, low=1 << 40)
        codes = encode_keys(extra)
        table.stash.push(codes, extra)
        snapshot = _TableSnapshot(table)
        table.stash.pop_all()
        assert len(table.stash) == 0
        snapshot.restore(table)
        assert len(table.stash) == 40
        _, found = table.find(extra)
        assert found.all()

    def test_snapshot_discards_stash_pushed_after_capture(self):
        table, _keys = filled_table(n_keys=300)
        snapshot = _TableSnapshot(table)
        extra = unique_keys(8, seed=78, low=1 << 40)
        table.stash.push(encode_keys(extra), extra)
        snapshot.restore(table)
        assert len(table.stash) == 0


class TestErrorHandlingRegressions:
    """The three resize-path error-handling fixes of this PR."""

    def test_ceiling_blocked_bound_enforcement_keeps_batch(self):
        """A ceiling-blocked upsize must not fail a landed batch.

        Regression: ``enforce_bounds`` caught :class:`ResizeError` but
        let :class:`CapacityError` propagate, reporting failure for an
        insert batch whose keys were all stored successfully.  The
        ceiling block is recorded and the table simply stays above
        ``beta`` until deletes make room.
        """
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8,
            max_total_slots=512))
        assert table.total_slots == 512  # no doubling can ever fit
        keys = unique_keys(450, seed=31)
        table.insert(keys, keys)  # must not raise
        assert table.stats.capacity_blocked >= 1
        assert table.load_factor > table.config.beta
        _, found = table.find(keys)
        assert found.all()
        # Deletes make room again; bounds enforcement resumes cleanly.
        table.delete(keys[:200])
        assert table.load_factor <= table.config.beta + 1e-9

    def test_anticipatory_upsize_stops_at_ceiling(self):
        """An anticipatory extra doubling hitting the ceiling is benign.

        Regression: only :class:`ResizeError` stopped the anticipation
        loop; a ``max_total_slots`` ceiling propagated out of
        ``upsize_for_insert_failure`` even though the mandatory first
        doubling had already created the capacity the insert needed.
        """
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=8, bucket_capacity=8, min_buckets=8,
            anticipatory_upsize=True, max_total_slots=320))
        keys = unique_keys(190, seed=32)
        table.insert(keys, keys)
        assert table.stats.upsizes == 0  # still inside the band
        table._resizer.upsize_for_insert_failure()  # must not raise
        # The mandatory doubling fit (256 -> 320); the anticipatory
        # extra would exceed the ceiling and is abandoned.
        assert table.stats.upsizes == 1
        assert table.total_slots == 320
        table.finalize_resizes()
        table.validate()
        _, found = table.find(keys)
        assert found.all()

    def test_abort_mid_stash_drain_loses_no_key(self):
        """Resize aborts firing around a stash drain keep every key.

        Exercises the snapshot-covers-stash fix end to end: every
        resize attempt aborts at the rehash stage, inserts degrade to
        the stash, and drains retried across resize epochs roll back
        without losing or resurrecting keys.
        """
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=8, bucket_capacity=4, min_buckets=4,
            alpha=0.45, beta=0.55, stash_capacity=4096))
        table.set_fault_plan(FaultPlan(seed=9, rates={
            "resize.abort.rehash": 1.0, "insert.evict": 0.2}))
        model = {}
        rng = np.random.default_rng(33)
        for wave in range(6):
            keys = rng.integers(1, 400, 60).astype(np.uint64)
            table.insert(keys, keys * np.uint64(2))
            for k in keys.tolist():
                model[k] = k * 2
            dels = rng.integers(1, 400, 20).astype(np.uint64)
            table.delete(dels)
            for k in dels.tolist():
                model.pop(k, None)
            probe = np.array(sorted(model), dtype=np.uint64)
            values, found = table.find(probe)
            assert found.all(), f"lost keys in wave {wave}"
            assert np.array_equal(values,
                                  probe * np.uint64(2))
        missing = np.array([k for k in range(1, 400)
                            if k not in model], dtype=np.uint64)
        _, found = table.find(missing)
        assert not found.any()


class TestMigrationEpochs:
    def test_epoch_open_grows_capacity_before_any_entry_moves(self):
        table, keys = filled_table()
        slots_before = table.total_slots
        migrated_before = table.stats.migrated_pairs
        target = table._resizer.open_upsize_epoch()
        st = table.subtables[target]
        assert st.migration is not None
        assert st.migration.kind == "upsize"
        assert table.total_slots == slots_before + st.total_slots // 2
        assert table.stats.migrated_pairs == migrated_before
        # Dual view: every key reachable while nothing has migrated.
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_drain_respects_budget_and_completes(self):
        table, keys = filled_table()
        table._resizer.open_upsize_epoch()
        moved_total = 0
        for _ in range(1000):
            moved = table._resizer.drain_migration(max_pairs=8)
            assert moved <= 8
            moved_total += moved
            if not any(st.migration is not None
                       for st in table.subtables):
                break
        else:  # pragma: no cover - would mean the epoch never closed
            raise AssertionError("epoch did not complete")
        assert moved_total > 0
        table.validate()
        _, found = table.find(keys)
        assert found.all()

    def test_concurrent_epochs_share_one_batch_budget(self):
        """A batch never pays more than one budget, however many epochs."""
        table, _keys = filled_table()
        first = table._resizer.open_upsize_epoch()
        second = table._resizer.open_upsize_epoch()
        assert first != second  # smallest-subtable pick moves on
        assert len(table._resizer._open_epochs()) == 2
        assert table._resizer.drain_migration(max_pairs=6) <= 6
        assert table._resizer.drain_migration(max_pairs=6) <= 6

    def test_reopening_a_subtable_finalizes_its_own_epoch_only(self):
        table, keys = filled_table()
        first = table._resizer.open_upsize_epoch()
        # Force the same subtable to be smallest again by doubling the
        # others... instead simply reopen until the pick cycles back.
        opened = {first}
        for _ in range(len(table.subtables)):
            nxt = table._resizer.open_upsize_epoch()
            if nxt == first:
                break
            opened.add(nxt)
        st = table.subtables[first]
        # Its first epoch was finalized before the geometry doubled
        # again; others may still be mid-flight.
        assert st.migration is None or st.migration.kind == "upsize"
        table.finalize_resizes()
        table.validate()
        _, found = table.find(keys)
        assert found.all()

    def test_downsize_epoch_halves_logical_size_immediately(self):
        table, keys = filled_table(n_keys=400)
        table.delete(keys[200:])
        table.finalize_resizes()
        slots_before = table.total_slots
        target = table._resizer.open_downsize_epoch()
        st = table.subtables[target]
        assert st.migration is not None
        assert st.migration.kind == "downsize"
        assert table.total_slots == slots_before - st.total_slots
        values, found = table.find(keys[:200])
        assert found.all()
        table.finalize_resizes()
        table.validate()
        _, found = table.find(keys[:200])
        assert found.all()

    def test_delete_mid_epoch_hits_both_views(self):
        table, keys = filled_table()
        table._resizer.open_upsize_epoch()
        table._resizer.drain_migration(max_pairs=4)  # mixed views
        removed = table.delete(keys)
        assert removed.all()
        table.finalize_resizes()
        assert len(table) == 0

    def test_stall_path_upsize_is_synchronous(self):
        """An insert-stall doubling leaves no open epoch behind."""
        table, _keys = filled_table()
        table._resizer.upsize_for_insert_failure()
        assert table._resizer._open_epochs() == []

    def test_manual_resizes_finalize_open_epochs_first(self):
        table, keys = filled_table()
        table._resizer.open_upsize_epoch()
        table.upsize()  # one-shot keeps all-or-nothing semantics
        assert table._resizer._open_epochs() == []
        table.validate()
        _, found = table.find(keys)
        assert found.all()
