"""Deep profiler, flight recorder, and latency/report layer.

Covers the observability tentpole end to end:

* latency percentiles (nearest-rank semantics, batch summaries),
* profiler accumulation through real table runs: kernel timelines,
  lock heatmap, probe/chain histograms, fill timeline, stash tracking,
* the flight recorder ring, trip wiring (fault plan, sanitizer,
  ``check_invariants``), and post-mortem bundle dumps,
* the zero-overhead guarantee: no profiler/recorder attached means
  bit-identical storage and counters versus an uninstrumented run,
* the HTML report surface and the ``gpusim.profile`` compat shim.
"""

import json

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.core.analysis import check_invariants
from repro.core.batch_ops import OP_DELETE, OP_FIND, OP_INSERT
from repro.faults import NO_FAULTS, FaultPlan
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry import (NULL_PROFILER, NULL_RECORDER, FlightRecorder,
                             Profiler, format_summary, percentile,
                             summarize, summarize_batches)
from repro.telemetry.report import render_html, write_html_report

from tests.conftest import unique_keys


def small_table(**overrides) -> DyCuckooTable:
    defaults = dict(initial_buckets=16, bucket_capacity=8, seed=7)
    defaults.update(overrides)
    return DyCuckooTable(DyCuckooConfig(**defaults))


class TestLatency:
    def test_percentile_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(samples, 50) == 5.0
        assert percentile(samples, 99) == 10.0
        assert percentile(samples, 100) == 10.0
        with pytest.raises(ValueError):
            percentile(samples, 0)
        with pytest.raises(ValueError):
            percentile([], 50)
        # Order must not matter.
        assert percentile(list(reversed(samples)), 90) == 9.0

    def test_summarize(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary["count"] == 3
        assert summary["p50"] == 2.0
        assert summary["worst"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["total"] == pytest.approx(6.0)

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["worst"] == 0.0

    def test_summarize_batches_worst_index(self):
        class Batch:
            def __init__(self, seconds):
                self.simulated_seconds = seconds

        summary = summarize_batches([Batch(1e-6), Batch(9e-6), Batch(2e-6)])
        assert summary["count"] == 3
        assert summary["worst"] == pytest.approx(9e-6)
        assert summary["worst_batch"] == 1
        assert summarize_batches([])["worst_batch"] == -1

    def test_format_summary_units(self):
        text = format_summary(summarize([2e-6, 4e-6]))
        assert "us" in text and "p50" in text and "worst" in text


class TestProfilerAccumulation:
    def run_mixed(self, engine: str) -> dict:
        n = 600
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=32, bucket_capacity=8, auto_resize=False,
            seed=11))
        prof = table.set_profiler(Profiler())
        keys = unique_keys(n, seed=11)
        values = keys + np.uint64(1)
        ops = np.concatenate([
            np.full(n, OP_INSERT), np.full(n // 2, OP_FIND),
            np.full(n // 4, OP_DELETE)]).astype(np.int64)
        all_keys = np.concatenate([keys, keys[:n // 2], keys[:n // 4]])
        all_values = np.concatenate(
            [values, np.zeros(n // 2 + n // 4, dtype=np.uint64)])
        table.execute_mixed(ops, all_keys, all_values, engine=engine)
        return prof.snapshot()

    def test_kernel_timelines_and_histograms(self):
        snap = self.run_mixed("warp")
        names = [k["op"] for k in snap["kernels"]]
        assert "insert" in names and "find" in names and "delete" in names
        insert = next(k for k in snap["kernels"] if k["op"] == "insert")
        assert insert["n"] == 600
        assert insert["rounds"], "insert must log occupancy rounds"
        for row in insert["rounds"]:
            assert row["active_lanes"] <= row["active_warps"] * 32
        assert snap["lock_heatmap"], "insert takes bucket locks"
        for cell in snap["lock_heatmap"]:
            assert cell["grants"] >= 0 and cell["conflicts"] >= 0
        assert snap["probe_lengths"], "find/delete record probe lengths"
        assert set(snap["probe_lengths"]) <= {"1", "2"}
        assert snap["chain_depths"], "insert records eviction chains"

    def test_engines_produce_identical_snapshots(self):
        assert self.run_mixed("warp") == self.run_mixed("cohort")

    def test_fill_timeline_across_resizes(self):
        table = small_table(initial_buckets=8)
        prof = table.set_profiler(Profiler())
        keys = unique_keys(3000, seed=3)
        table.insert(keys, keys)
        snap = prof.snapshot()
        upsizes = [p for p in snap["fill_timeline"] if p["event"] == "upsize"]
        assert upsizes, "inserting 3000 keys into 8 buckets must upsize"
        for point in upsizes:
            assert len(point["subtables"]) == table.config.num_tables
            assert 0.0 <= point["global"] <= 1.0

    def test_stash_high_water(self):
        prof = Profiler()
        prof.sample_stash(2)
        prof.sample_stash(5)
        prof.sample_stash(1)
        snap = prof.snapshot()
        assert snap["stash"]["high_water"] == 5
        assert len(snap["stash"]["samples"]) == 3

    def test_null_profiler_is_disabled(self):
        assert not NULL_PROFILER.enabled
        assert Profiler().enabled


class TestZeroOverhead:
    """Disabled instrumentation must be invisible: same storage, same
    counters, same results as a table that never heard of profiling."""

    def run_workload(self, table: DyCuckooTable):
        keys = unique_keys(2000, seed=5)
        table.insert(keys, keys)
        found = table.find(keys)
        removed = table.delete(keys[:500])
        return keys, found, removed

    def test_disabled_profiler_bit_identical(self):
        plain = small_table()
        _, found_p, removed_p = self.run_workload(plain)

        nulled = small_table()
        nulled.set_profiler(None)
        nulled.set_recorder(None)
        assert nulled.profiler is NULL_PROFILER
        assert nulled.recorder is NULL_RECORDER
        _, found_n, removed_n = self.run_workload(nulled)

        assert np.array_equal(found_p[0], found_n[0])
        assert np.array_equal(found_p[1], found_n[1])
        assert np.array_equal(removed_p, removed_n)
        assert plain.to_dict() == nulled.to_dict()
        assert plain.stats.snapshot() == nulled.stats.snapshot()

    def test_enabled_profiler_does_not_perturb_results(self):
        plain = small_table()
        self.run_workload(plain)

        profiled = small_table()
        profiled.set_profiler(Profiler())
        profiled.set_recorder(FlightRecorder())
        self.run_workload(profiled)

        assert plain.to_dict() == profiled.to_dict()
        assert plain.stats.snapshot() == profiled.stats.snapshot()

    def test_shared_singletons_never_gain_a_recorder(self):
        table = small_table()
        table.set_recorder(FlightRecorder())
        # The table holds the recorder, but the module-level disabled
        # singletons must stay pristine (they are shared globally).
        assert NO_FAULTS.recorder is NULL_RECORDER
        assert NULL_SANITIZER.recorder is NULL_RECORDER


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("tick", i=i)
        assert len(rec.events) == 8
        assert [e["i"] for e in rec.events] == list(range(12, 20))

    def test_fault_trip_produces_bundle(self, tmp_path):
        table = small_table(initial_buckets=8)
        rec = table.set_recorder(FlightRecorder(dump_dir=str(tmp_path)))
        table.set_profiler(Profiler())
        table.set_fault_plan(FaultPlan(
            seed=1, rates={"resize.abort.trigger": 1.0}))
        keys = unique_keys(int(table.total_slots * 0.88), seed=1)
        table.insert(keys, keys)

        assert rec.trips > 0
        bundle = rec.last_bundle()
        assert bundle["reason"] == "fault"
        assert bundle["detail"]["site"] == "resize.abort.trigger"
        assert bundle["table"]["len"] == len(table)
        assert bundle["profiler"] is not None
        dumps = sorted(tmp_path.glob("postmortem_*.json"))
        assert dumps, "trip must write a post-mortem file"
        on_disk = json.loads(dumps[-1].read_text())
        assert on_disk["reason"] == "fault"

    def test_sanitizer_violation_trips(self):
        from repro.sanitizer import Sanitizer

        table = small_table()
        rec = table.set_recorder(FlightRecorder())
        san = table.set_sanitizer(Sanitizer())
        san._violate("racecheck", "test.rule",
                     "synthetic violation for the recorder")
        assert not san.ok
        assert rec.trips == 1
        assert rec.last_bundle()["reason"] == "sanitizer_violation"

    def test_check_invariants_trips(self):
        table = small_table()
        rec = table.set_recorder(FlightRecorder())
        keys = unique_keys(50, seed=2)
        table.insert(keys, keys)
        # Corrupt one stored slot so a structural invariant fails.
        st = table.subtables[0]
        occupied = np.argwhere(st.keys != 0)
        bucket, slot = occupied[0]
        st.keys[bucket, slot] += np.uint64(1)
        with pytest.raises(AssertionError):
            check_invariants(table)
        assert rec.trips == 1
        assert rec.last_bundle()["reason"] == "invariant_failure"

    def test_resize_and_stash_events_recorded(self):
        # Automatic resizes open incremental epochs by default, so the
        # recorder sees epoch-open events (with a direction) instead of
        # the one-shot resize events.
        table = small_table(initial_buckets=8)
        rec = table.set_recorder(FlightRecorder(capacity=512))
        keys = unique_keys(3000, seed=4)
        table.insert(keys, keys)
        directions = {e.get("direction") for e in rec.events
                      if e["kind"] == "resize.epoch_open"}
        assert "upsize" in directions
        table.delete(keys[:2700])
        directions = {e.get("direction") for e in rec.events
                      if e["kind"] == "resize.epoch_open"}
        assert "downsize" in directions
        kinds = {e["kind"] for e in rec.events}
        assert "resize.migrate" in kinds
        assert "resize.epoch_complete" in kinds

    def test_summary_shape(self):
        rec = FlightRecorder()
        assert rec.summary() == {"trips": 0, "bundles": 0, "events": []}
        rec.record("x")
        rec.trip("manual", why="test")
        digest = rec.summary()
        assert digest["trips"] == 1 and digest["bundles"] == 1
        assert digest["reason"] == "manual"
        json.dumps(digest)  # must embed into failure messages


class TestReportSurface:
    def make_report(self) -> dict:
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=32, bucket_capacity=8, auto_resize=False,
            seed=9))
        prof = table.set_profiler(Profiler())
        keys = unique_keys(400, seed=9)
        ops = np.concatenate([np.full(400, OP_INSERT),
                              np.full(200, OP_FIND)]).astype(np.int64)
        table.execute_mixed(ops, np.concatenate([keys, keys[:200]]),
                            np.concatenate([keys, keys[:200]]),
                            engine="cohort")
        prof.sample_fill("batch", table)
        prof.sample_fill("batch", table)
        snap = prof.snapshot()
        return {
            "seed": 9, "ops": 400, "keys": 400,
            "engines": {"cohort": snap},
            "conformant": True,
            "dynamic": snap,
            "latency": summarize([1e-6, 2e-6, 3e-6]),
            "profiles": [],
            "recorder": {"trips": 0, "bundles": 0, "events": []},
        }

    def test_render_html_sections(self):
        html = render_html(self.make_report())
        for heading in ("divergence timelines", "Lock-contention heatmap",
                        "Probe lengths", "fill-factor timeline",
                        "Batch latency", "Flight recorder"):
            assert heading in html, heading
        assert "<svg" in html

    def test_write_html_report(self, tmp_path):
        path = tmp_path / "report.html"
        written = write_html_report(path, self.make_report())
        assert str(written) == str(path)
        assert path.read_text().lower().startswith("<!doctype html>")

    def test_gpusim_profile_shim(self):
        from repro.gpusim import profile as shim
        from repro.telemetry import profiler as real

        assert shim.KernelProfile is real.KernelProfile
        assert shim.profile_batch is real.profile_batch
        assert shim.profile_operation is real.profile_operation
