"""Unit tests for the DyCuckoo table's public operations."""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.table import MAX_KEY, DyCuckooTable, decode_keys, encode_keys
from repro.errors import CapacityError, InvalidKeyError

from .conftest import unique_keys


class TestEncoding:
    def test_round_trip(self):
        keys = np.array([0, 1, MAX_KEY], dtype=np.uint64)
        assert np.array_equal(decode_keys(encode_keys(keys)), keys)

    def test_rejects_reserved_key(self):
        with pytest.raises(InvalidKeyError):
            encode_keys(np.array([MAX_KEY + 1], dtype=np.uint64))

    def test_rejects_2d(self):
        with pytest.raises(InvalidKeyError):
            encode_keys(np.zeros((2, 2), dtype=np.uint64))


class TestBasicOperations:
    def test_insert_find(self, small_table):
        keys = unique_keys(1000, seed=1)
        small_table.insert(keys, keys * 2)
        values, found = small_table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_find_missing(self, small_table):
        keys = unique_keys(100, seed=2)
        small_table.insert(keys, keys)
        missing = unique_keys(50, seed=99, low=1 << 62, high=(1 << 63) - 1)
        values, found = small_table.find(missing)
        assert not found.any()
        assert (values == 0).all()

    def test_key_zero_supported(self, small_table):
        small_table.insert(np.array([0], dtype=np.uint64),
                           np.array([42], dtype=np.uint64))
        assert small_table.get(0) == 42

    def test_max_key_supported(self, small_table):
        small_table.insert(np.array([MAX_KEY], dtype=np.uint64),
                           np.array([7], dtype=np.uint64))
        assert small_table.get(MAX_KEY) == 7

    def test_get_default(self, small_table):
        assert small_table.get(12345) is None
        assert small_table.get(12345, default=-1) == -1

    def test_contains(self, small_table):
        keys = unique_keys(64, seed=3)
        small_table.insert(keys, keys)
        assert small_table.contains(keys).all()

    def test_upsert_updates_value(self, small_table):
        keys = unique_keys(500, seed=4)
        small_table.insert(keys, keys)
        small_table.insert(keys, keys + np.uint64(1))
        values, found = small_table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys + np.uint64(1))
        assert len(small_table) == 500

    def test_duplicate_keys_in_batch_last_wins(self, small_table):
        keys = np.array([9, 9, 9], dtype=np.uint64)
        vals = np.array([1, 2, 3], dtype=np.uint64)
        small_table.insert(keys, vals)
        assert small_table.get(9) == 3
        assert len(small_table) == 1
        small_table.validate()

    def test_delete(self, small_table):
        keys = unique_keys(800, seed=5)
        small_table.insert(keys, keys)
        removed = small_table.delete(keys[:400])
        assert removed.all()
        assert len(small_table) == 400
        _, found = small_table.find(keys)
        assert not found[:400].any()
        assert found[400:].all()
        small_table.validate()

    def test_delete_missing(self, small_table):
        removed = small_table.delete(np.array([1, 2, 3], dtype=np.uint64))
        assert not removed.any()

    def test_delete_duplicates_counted_once(self, small_table):
        small_table.insert(np.array([5], dtype=np.uint64),
                           np.array([50], dtype=np.uint64))
        removed = small_table.delete(np.array([5, 5, 5], dtype=np.uint64))
        assert removed.sum() == 1
        assert removed[0]  # the first occurrence wins
        assert len(small_table) == 0
        small_table.validate()

    def test_empty_batches(self, small_table):
        empty = np.array([], dtype=np.uint64)
        small_table.insert(empty, empty)
        values, found = small_table.find(empty)
        assert len(values) == 0
        removed = small_table.delete(empty)
        assert len(removed) == 0

    def test_mismatched_values_rejected(self, small_table):
        with pytest.raises(InvalidKeyError):
            small_table.insert(np.array([1, 2], dtype=np.uint64),
                               np.array([1], dtype=np.uint64))

    def test_items_round_trip(self, small_table):
        keys = unique_keys(300, seed=6)
        small_table.insert(keys, keys * 3)
        out_keys, out_values = small_table.items()
        assert len(out_keys) == 300
        order = np.argsort(out_keys)
        assert np.array_equal(out_keys[order], np.sort(keys))
        assert np.array_equal(out_values[order], np.sort(keys) * np.uint64(3))


class TestInvariants:
    def test_two_lookup_guarantee(self, small_table):
        """FIND reads at most two buckets per key (the two-layer claim)."""
        keys = unique_keys(2000, seed=7)
        small_table.insert(keys, keys)
        before = small_table.stats.snapshot()
        small_table.find(keys)
        delta = small_table.stats.delta(before)
        assert delta["bucket_reads"] <= 2 * len(keys)

    def test_delete_two_lookup_guarantee(self, small_table):
        keys = unique_keys(2000, seed=8)
        small_table.insert(keys, keys)
        before = small_table.stats.snapshot()
        small_table.delete(keys)
        delta = small_table.stats.delta(before)
        assert delta["bucket_reads"] <= 2 * len(keys)

    def test_validate_after_heavy_churn(self, small_table):
        rng = np.random.default_rng(9)
        pool = unique_keys(3000, seed=10)
        live = set()
        for step in range(20):
            batch = rng.choice(pool, 400, replace=False)
            if step % 3 == 2:
                small_table.delete(batch)
                live -= set(batch.tolist())
            else:
                small_table.insert(batch, batch)
                live |= set(batch.tolist())
            small_table.validate()
        assert len(small_table) == len(live)

    def test_size_discipline(self, small_table):
        """No subtable more than twice the size of any other."""
        keys = unique_keys(20_000, seed=11)
        small_table.insert(keys, keys)
        sizes = [st.n_buckets for st in small_table.subtables]
        assert max(sizes) <= 2 * min(sizes)

    def test_static_table_raises_when_full(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=4,
                                auto_resize=False, max_eviction_rounds=16)
        table = DyCuckooTable(config)
        too_many = unique_keys(8 * 4 * 4 + 100, seed=12)
        with pytest.raises(CapacityError):
            table.insert(too_many, too_many)

    def test_load_factor_definition(self, small_table):
        keys = unique_keys(100, seed=13)
        small_table.insert(keys, keys)
        assert small_table.load_factor == pytest.approx(
            len(small_table) / small_table.total_slots)

    def test_memory_footprint(self, small_table):
        keys = unique_keys(100, seed=14)
        small_table.insert(keys, keys)
        fp = small_table.memory_footprint()
        assert fp.live_entries == 100
        assert fp.total_slots == small_table.total_slots
        # 16 bytes per slot plus lock words.
        assert fp.slot_bytes == small_table.total_slots * 16
        assert fp.overhead_bytes > 0


class TestRoutingPolicies:
    def test_uniform_routing_works(self):
        config = DyCuckooConfig(initial_buckets=16, bucket_capacity=8,
                                routing="uniform")
        table = DyCuckooTable(config)
        keys = unique_keys(2000, seed=15)
        table.insert(keys, keys)
        _, found = table.find(keys)
        assert found.all()
        table.validate()

    def test_num_tables_variants(self):
        for d in (2, 3, 5, 8):
            config = DyCuckooConfig(num_tables=d, initial_buckets=16,
                                    bucket_capacity=8)
            table = DyCuckooTable(config)
            keys = unique_keys(3000, seed=d)
            table.insert(keys, keys)
            _, found = table.find(keys)
            assert found.all(), f"d={d}"
            table.validate()
