"""Tests for the lane-level kernels against the vectorized fast path."""

import numpy as np

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.kernels import (run_delete_kernel, run_downsize_kernel,
                           run_find_kernel, run_spin_insert_kernel,
                           run_upsize_kernel, run_voter_insert_kernel)

from .conftest import unique_keys


def fresh_table(buckets=64, capacity=8, **kw):
    defaults = dict(initial_buckets=buckets, bucket_capacity=capacity,
                    auto_resize=False)
    defaults.update(kw)
    return DyCuckooTable(DyCuckooConfig(**defaults))


class TestVoterInsert:
    def test_insert_then_find(self):
        table = fresh_table()
        keys = unique_keys(700, seed=1)
        result = run_voter_insert_kernel(table, keys, keys * 3)
        assert result.completed_ops == 700
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(3))

    def test_matches_vectorized_membership(self):
        """Kernel and vectorized inserts produce equivalent tables.

        Slot placement may differ (scheduling), but the key set, values
        and invariants must match.
        """
        keys = unique_keys(500, seed=2)
        vals = keys + np.uint64(7)
        kernel_table = fresh_table()
        run_voter_insert_kernel(kernel_table, keys, vals)
        vector_table = fresh_table()
        vector_table.insert(keys, vals)
        for table in (kernel_table, vector_table):
            table.validate()
            values, found = table.find(keys)
            assert found.all()
            assert np.array_equal(values, vals)
        assert len(kernel_table) == len(vector_table) == 500

    def test_counts_lock_traffic(self):
        table = fresh_table(buckets=8, capacity=32)
        keys = unique_keys(600, seed=3)
        result = run_voter_insert_kernel(table, keys, keys)
        assert result.lock_acquisitions >= 600
        assert result.rounds > 0
        assert result.memory_transactions > 0

    def test_evictions_happen_when_dense(self):
        table = fresh_table(buckets=8, capacity=8)
        keys = unique_keys(200, seed=4)
        result = run_voter_insert_kernel(table, keys, keys)
        table.validate()
        assert result.evictions > 0
        _, found = table.find(keys)
        assert found.all()

    def test_spin_variant_equivalent_result(self):
        table = fresh_table()
        keys = unique_keys(400, seed=5)
        result = run_spin_insert_kernel(table, keys, keys)
        assert result.completed_ops == 400
        table.validate()
        _, found = table.find(keys)
        assert found.all()

    def test_voter_wastes_fewer_rounds_under_skew(self):
        """The voter scheme's claim: under hot buckets it beats spinning.

        Averaged over several seeds to smooth scheduling noise; we
        require the voter variant to be at least as good on conflicts.
        """
        voter_conflicts = spin_conflicts = 0
        for seed in range(4):
            rng = np.random.default_rng(seed)
            hot = rng.choice(np.arange(1, 16, dtype=np.uint64), 300)
            cold = unique_keys(300, seed=100 + seed, low=1 << 33)
            keys = np.concatenate([hot, cold])
            rng.shuffle(keys)
            ta = fresh_table(buckets=256, capacity=16)
            tb = fresh_table(buckets=256, capacity=16)
            voter_conflicts += run_voter_insert_kernel(ta, keys, keys).lock_conflicts
            spin_conflicts += run_spin_insert_kernel(tb, keys, keys).lock_conflicts
        assert voter_conflicts <= spin_conflicts


class TestFindDeleteKernels:
    def test_find_matches_vectorized(self):
        table = fresh_table()
        keys = unique_keys(300, seed=6)
        table.insert(keys, keys * 2)
        probe = np.concatenate([keys[:150], unique_keys(50, seed=7,
                                                        low=1 << 40)])
        kv, kf, result = run_find_kernel(table, probe)
        vv, vf = table.find(probe)
        assert np.array_equal(kf, vf)
        assert np.array_equal(kv[kf], vv[vf])
        assert result.memory_transactions <= 2 * len(probe)

    def test_delete_matches_vectorized(self):
        keys = unique_keys(300, seed=8)
        kernel_table = fresh_table()
        kernel_table.insert(keys, keys)
        removed, result = run_delete_kernel(kernel_table, keys[:100])
        assert removed.all()
        kernel_table.validate()
        _, found = kernel_table.find(keys)
        assert not found[:100].any()
        assert found[100:].all()
        assert result.memory_transactions <= 2 * 100 + 100

    def test_delete_miss(self):
        table = fresh_table()
        removed, _ = run_delete_kernel(table, unique_keys(10, seed=9))
        assert not removed.any()


class TestResizeKernels:
    def test_upsize_kernel_matches_controller(self):
        keys = unique_keys(600, seed=10)
        kernel_table = fresh_table(buckets=32, capacity=8)
        kernel_table.insert(keys, keys)
        control_table = fresh_table(buckets=32, capacity=8)
        control_table.insert(keys, keys)

        # Both upsize subtable 0.
        run_upsize_kernel(kernel_table, 0)
        control_table._resizer._pick_upsize_target = lambda: 0
        control_table.upsize()

        for table in (kernel_table, control_table):
            table.validate()
            _, found = table.find(keys)
            assert found.all()
        assert (kernel_table.subtables[0].n_buckets
                == control_table.subtables[0].n_buckets)
        # Same entries in subtable 0 (layout may pack differently).
        k_codes = np.sort(kernel_table.subtables[0].export_entries()[0])
        c_codes = np.sort(control_table.subtables[0].export_entries()[0])
        assert np.array_equal(k_codes, c_codes)

    def test_downsize_kernel_returns_residuals(self):
        table = fresh_table(buckets=32, capacity=4)
        keys = unique_keys(300, seed=11)
        table.insert(keys, keys)
        st = table.subtables[0]
        size_before = st.size
        res_codes, res_values, result = run_downsize_kernel(table, 0)
        assert st.n_buckets == 16
        assert st.size + len(res_codes) == size_before
        assert result.completed_ops == size_before

    def test_downsize_then_reinsert_residuals(self):
        table = fresh_table(buckets=32, capacity=4)
        keys = unique_keys(300, seed=12)
        table.insert(keys, keys * 5)
        res_codes, res_values, _ = run_downsize_kernel(table, 1)
        if len(res_codes):
            current = np.full(len(res_codes), 1, dtype=np.int64)
            alternates = table.pair_hash.alternate_table(res_codes, current)
            table._insert_pending(res_codes, res_values, alternates,
                                  excluded=1)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(5))


class TestMegaKVKernel:
    def test_insert_then_find(self):
        from repro.baselines.megakv import MegaKVTable
        from repro.kernels import run_megakv_insert_kernel

        table = MegaKVTable(initial_buckets=64, bucket_capacity=8,
                            auto_resize=False)
        keys = unique_keys(700, seed=20)
        result = run_megakv_insert_kernel(table, keys, keys * 3)
        assert result.completed_ops == 700
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(3))

    def test_matches_vectorized_membership(self):
        from repro.baselines.megakv import MegaKVTable
        from repro.kernels import run_megakv_insert_kernel

        keys = unique_keys(400, seed=21)
        kernel_table = MegaKVTable(initial_buckets=64, bucket_capacity=8,
                                   auto_resize=False)
        run_megakv_insert_kernel(kernel_table, keys, keys)
        vector_table = MegaKVTable(initial_buckets=64, bucket_capacity=8,
                                   auto_resize=False)
        vector_table.insert(keys, keys)
        for table in (kernel_table, vector_table):
            table.validate()
            _, found = table.find(keys)
            assert found.all()
        assert len(kernel_table) == len(vector_table) == 400

    def test_evictions_under_density(self):
        from repro.baselines.megakv import MegaKVTable
        from repro.kernels import run_megakv_insert_kernel

        table = MegaKVTable(initial_buckets=8, bucket_capacity=8,
                            auto_resize=False)
        keys = unique_keys(100, seed=22)
        result = run_megakv_insert_kernel(table, keys, keys)
        table.validate()
        assert result.evictions > 0
        _, found = table.find(keys)
        assert found.all()

    def test_no_lock_traffic(self):
        """MegaKV's kernel is lock-free: exchanges, not CAS locks."""
        from repro.baselines.megakv import MegaKVTable
        from repro.kernels import run_megakv_insert_kernel

        table = MegaKVTable(initial_buckets=64, bucket_capacity=8,
                            auto_resize=False)
        keys = unique_keys(300, seed=23)
        result = run_megakv_insert_kernel(table, keys, keys)
        assert result.lock_acquisitions == 0
        assert result.lock_conflicts == 0


class TestConflictEstimateSanity:
    def test_estimator_tracks_kernel_measurement(self):
        """The occupancy estimate and the lane-level ground truth agree
        within an order of magnitude under matched concurrency."""
        from repro.gpusim.kernel import estimate_lock_conflicts

        table = fresh_table(buckets=32, capacity=8)
        keys = unique_keys(800, seed=24)
        result = run_voter_insert_kernel(table, keys, keys)
        num_warps = (800 + 31) // 32
        # In the kernel every warp is resident; one op per warp per round.
        estimated = estimate_lock_conflicts(
            800, 32 * 4, resident_warps=num_warps)
        measured = result.lock_conflicts
        assert measured > 0
        assert estimated / 10 <= measured <= estimated * 10
