"""Tests for the MegaKV baseline."""

import numpy as np
import pytest

from repro.baselines.megakv import MegaKVTable
from repro.errors import CapacityError, InvalidConfigError

from .conftest import unique_keys


class TestBasicOperations:
    def test_insert_find_delete(self):
        table = MegaKVTable(initial_buckets=16, bucket_capacity=8)
        keys = unique_keys(2000, seed=1)
        table.insert(keys, keys * 2)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))
        removed = table.delete(keys[:1000])
        assert removed.all()
        table.validate()
        _, found = table.find(keys)
        assert not found[:1000].any()
        assert found[1000:].all()

    def test_upsert(self):
        table = MegaKVTable(initial_buckets=16)
        keys = unique_keys(100, seed=2)
        table.insert(keys, keys)
        table.insert(keys, keys + np.uint64(1))
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys + np.uint64(1))
        assert len(table) == 100

    def test_duplicate_batch_last_wins(self):
        table = MegaKVTable(initial_buckets=16)
        table.insert(np.array([4, 4], dtype=np.uint64),
                     np.array([1, 2], dtype=np.uint64))
        values, found = table.find(np.array([4], dtype=np.uint64))
        assert found[0] and values[0] == 2
        assert len(table) == 1

    def test_duplicate_delete_counted_once(self):
        table = MegaKVTable(initial_buckets=16)
        table.insert(np.array([4], dtype=np.uint64),
                     np.array([1], dtype=np.uint64))
        removed = table.delete(np.array([4, 4], dtype=np.uint64))
        assert removed.tolist() == [True, False]

    def test_two_lookup_find(self):
        table = MegaKVTable(initial_buckets=64)
        keys = unique_keys(1000, seed=3)
        table.insert(keys, keys)
        before = table.stats.snapshot()
        table.find(keys)
        delta = table.stats.delta(before)
        assert delta["bucket_reads"] <= 2 * len(keys)

    def test_validation_errors(self):
        with pytest.raises(InvalidConfigError):
            MegaKVTable(alpha=0.9, beta=0.5)


class TestResizeStrategy:
    def test_growth_uses_full_rehash(self):
        """MegaKV's resize is the naive whole-table rebuild."""
        table = MegaKVTable(initial_buckets=8, bucket_capacity=8)
        keys = unique_keys(5000, seed=4)
        for start in range(0, len(keys), 500):
            table.insert(keys[start:start + 500], keys[start:start + 500])
        assert table.stats.full_rehashes > 0
        assert table.stats.rehashed_entries > 0
        _, found = table.find(keys)
        assert found.all()

    def test_fill_bounds_after_churn(self):
        table = MegaKVTable(initial_buckets=8, bucket_capacity=8,
                            alpha=0.3, beta=0.85)
        keys = unique_keys(5000, seed=5)
        table.insert(keys, keys)
        assert table.load_factor <= 0.85 + 1e-9
        table.delete(keys[:4500])
        at_min = table.n_buckets <= table.min_buckets
        assert table.load_factor >= 0.3 - 1e-9 or at_min

    def test_shrink_rehashes_everything(self):
        table = MegaKVTable(initial_buckets=8, bucket_capacity=8)
        keys = unique_keys(5000, seed=6)
        table.insert(keys, keys)
        rehashes_before = table.stats.full_rehashes
        table.delete(keys[:4500])
        assert table.stats.full_rehashes > rehashes_before
        _, found = table.find(keys[4500:])
        assert found.all()

    def test_static_table_raises_when_full(self):
        table = MegaKVTable(initial_buckets=8, bucket_capacity=4,
                            auto_resize=False, max_eviction_rounds=16)
        keys = unique_keys(8 * 4 * 2 + 50, seed=7)
        with pytest.raises(CapacityError):
            table.insert(keys, keys)

    def test_memory_footprint(self):
        table = MegaKVTable(initial_buckets=16, bucket_capacity=8)
        keys = unique_keys(100, seed=8)
        table.insert(keys, keys)
        fp = table.memory_footprint()
        assert fp.live_entries == 100
        assert fp.total_slots == table.total_slots
        assert fp.overhead_bytes == 0
