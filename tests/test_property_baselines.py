"""Property-based tests: baselines versus a dict reference model.

The same model-based harness as ``test_property_table``, applied to
MegaKV and SlabHash (CUDPP has no delete, so its program space is
insert/find only).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.cudpp import CudppHashTable
from repro.baselines.megakv import MegaKVTable
from repro.baselines.slab import SlabHashTable

KEY = st.integers(min_value=0, max_value=150)
VALUE = st.integers(min_value=0, max_value=1 << 32)

full_op = st.one_of(
    st.tuples(st.just("insert"),
              st.lists(st.tuples(KEY, VALUE), min_size=1, max_size=30)),
    st.tuples(st.just("delete"), st.lists(KEY, min_size=1, max_size=30)),
    st.tuples(st.just("find"), st.lists(KEY, min_size=1, max_size=30)),
)

read_write_op = st.one_of(
    st.tuples(st.just("insert"),
              st.lists(st.tuples(KEY, VALUE), min_size=1, max_size=30)),
    st.tuples(st.just("find"), st.lists(KEY, min_size=1, max_size=30)),
)


def apply_batch(table, model: dict, op) -> None:
    kind, payload = op
    if kind == "insert":
        keys = np.array([k for k, _v in payload], dtype=np.uint64)
        values = np.array([v for _k, v in payload], dtype=np.uint64)
        table.insert(keys, values)
        for k, v in payload:
            model[k] = v
    elif kind == "delete":
        keys = np.array(payload, dtype=np.uint64)
        removed = table.delete(keys)
        expected = 0
        seen = set()
        for k in payload:
            if k in model and k not in seen:
                expected += 1
            seen.add(k)
            model.pop(k, None)
        assert int(removed.sum()) == expected
    else:
        keys = np.array(payload, dtype=np.uint64)
        values, found = table.find(keys)
        for i, k in enumerate(payload):
            assert bool(found[i]) == (k in model), (kind, k)
            if k in model:
                assert int(values[i]) == model[k]


class TestMegaKVModel:
    @given(st.lists(full_op, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_dict(self, ops):
        table = MegaKVTable(initial_buckets=8, bucket_capacity=4)
        model: dict = {}
        for op in ops:
            apply_batch(table, model, op)
            assert len(table) == len(model)
        table.validate()


class TestSlabModel:
    @given(st.lists(full_op, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_dict(self, ops):
        table = SlabHashTable(n_buckets=4)
        model: dict = {}
        for op in ops:
            apply_batch(table, model, op)
            assert len(table) == len(model)
        table.validate()

    @given(st.lists(full_op, min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_memory_never_shrinks(self, ops):
        """Symbolic deletion: allocated slots are monotone."""
        table = SlabHashTable(n_buckets=4)
        model: dict = {}
        slots = table.total_slots
        for op in ops:
            apply_batch(table, model, op)
            assert table.total_slots >= slots
            slots = table.total_slots


class TestCudppModel:
    @given(st.lists(read_write_op, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_dict(self, ops):
        table = CudppHashTable(expected_entries=400, target_fill=0.5)
        model: dict = {}
        for op in ops:
            apply_batch(table, model, op)
            assert len(table) == len(model)
        table.validate()
