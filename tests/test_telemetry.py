"""Tests for the telemetry subsystem: tracer, metrics, exporters, wiring.

Covers the observability contract end to end:

* span nesting and ordering on the logical clock,
* histogram bucket-edge semantics,
* Chrome-trace export round-trip (emit -> parse JSON -> validate the
  ``ph``/``ts``/``dur`` invariants Perfetto relies on),
* the zero-overhead guarantee of the no-op default: no events, and no
  counter or content drift versus an uninstrumented run,
* the resize lifecycle (trigger -> plan -> rehash -> spill) appearing as
  properly nested spans in a real table run.
"""

import json

import numpy as np
import pytest

from repro.baselines import DyCuckooAdapter
from repro.bench import maybe_dump_trace, run_dynamic
from repro.bench.artifacts import ENV_VAR
from repro.core.analysis import check_invariants
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError
from repro.gpusim.metrics import CostModel
from repro.telemetry import (NULL_TELEMETRY, NULL_TRACER, MetricsRegistry,
                             Telemetry, Tracer)
from repro.telemetry.export import (prometheus_text,
                                    write_chrome_trace, write_jsonl)
from repro.telemetry.metrics import Histogram
from repro.workloads import DynamicWorkload, dataset_by_name

from tests.conftest import unique_keys


class TestTracerSpans:
    def test_span_nesting_depth_and_containment(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("inside-outer")
            with tracer.span("inner"):
                tracer.instant("inside-inner")
        outer, = tracer.spans("outer")
        inner, = tracer.spans("inner")
        assert outer.depth == 0
        assert inner.depth == 1
        assert tracer.instants("inside-outer")[0].depth == 1
        assert tracer.instants("inside-inner")[0].depth == 2
        # Interval containment: the inner span lies inside the outer.
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us

    def test_sibling_spans_do_not_overlap(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, = tracer.spans("a")
        b, = tracer.spans("b")
        assert a.ts_us + a.dur_us <= b.ts_us

    def test_event_order_is_strict(self):
        tracer = Tracer()
        for i in range(10):
            tracer.instant(f"e{i}")
        stamps = [e.ts_us for e in tracer.events]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_advance_moves_clock(self):
        tracer = Tracer()
        tracer.instant("before")
        tracer.advance(1.5e-3)  # 1.5 ms
        tracer.instant("after")
        before, after = tracer.events
        assert after.ts_us - before.ts_us >= 1500.0

    def test_span_closed_by_exception_unwind(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert all(e.dur_us > 0 for e in tracer.spans())
        # The stack fully unwound: a new span starts at depth 0.
        with tracer.span("next"):
            pass
        assert tracer.spans("next")[0].depth == 0

    def test_counter_accepts_scalar_and_mapping(self):
        tracer = Tracer()
        tracer.counter("x", 2)
        tracer.counter("y", {"s0": 0.5, "s1": 0.25})
        x, y = tracer.counters()
        assert x.args == {"value": 2.0}
        assert y.args == {"s0": 0.5, "s1": 0.25}


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0):      # <= 1 -> bucket 0
            hist.observe(value)
        for value in (1.01, 2.0):     # (1, 2] -> bucket 1
            hist.observe(value)
        hist.observe(3.0)             # (2, 4] -> bucket 2
        hist.observe(4.5)             # > 4 -> overflow
        assert hist.counts.tolist() == [2, 2, 1, 1]
        assert hist.total == 6
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.01 + 2.0 + 3.0 + 4.5)

    def test_observe_many_matches_scalar_path(self):
        values = np.array([0.0, 1.0, 1.5, 2.0, 7.9, 100.0])
        one_by_one = Histogram("a", buckets=(1.0, 2.0, 8.0))
        for v in values:
            one_by_one.observe(float(v))
        vectorized = Histogram("b", buckets=(1.0, 2.0, 8.0))
        vectorized.observe_many(values)
        assert one_by_one.counts.tolist() == vectorized.counts.tolist()
        assert one_by_one.sum == pytest.approx(vectorized.sum)

    def test_observe_count(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe_count(2.0, 5)
        hist.observe_count(9.0, 2)
        hist.observe_count(1.0, 0)  # no-op
        assert hist.counts.tolist() == [0, 5, 2]
        assert hist.total == 7

    def test_cumulative_ends_at_inf_with_total(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe_many([0.5, 1.5, 3.0, 9.0])
        pairs = hist.cumulative()
        assert pairs[-1][0] == float("inf")
        assert pairs[-1][1] == hist.total
        counts = [c for _b, c in pairs]
        assert counts == sorted(counts)  # cumulative is non-decreasing

    def test_rejects_bad_buckets(self):
        with pytest.raises(InvalidConfigError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(InvalidConfigError):
            Histogram("h", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidConfigError):
            registry.counter("c").inc(-1)

    def test_gauge_keeps_series(self):
        gauge = MetricsRegistry().gauge("fill")
        for v in (0.1, 0.5, 0.3):
            gauge.set(v)
        assert gauge.value == pytest.approx(0.3)
        assert gauge.series == pytest.approx([0.1, 0.5, 0.3])

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        registry.histogram("h", (1.0,)).observe(0.5)
        snapshot = registry.to_dict()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"]["g"]["value"] == 0.5
        assert snapshot["histograms"]["h"]["count"] == 1


def _traced_run(num_keys: int = 6000):
    """A small instrumented insert/find/delete cycle; returns telemetry."""
    table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                         bucket_capacity=8, min_buckets=8))
    telemetry = table.set_telemetry(Telemetry())
    keys = unique_keys(num_keys, seed=3)
    table.insert(keys, keys)
    table.find(keys[: num_keys // 2])
    table.delete(keys[: int(num_keys * 0.9)])
    return table, telemetry


class TestChromeExport:
    def test_round_trip_invariants(self, tmp_path):
        _table, telemetry = _traced_run()
        path = write_chrome_trace(telemetry.tracer, tmp_path / "t.json",
                                  metadata={"run": "test"})
        parsed = json.loads(path.read_text())
        events = parsed["traceEvents"]
        assert parsed["otherData"] == {"run": "test"}
        assert len(events) == len(telemetry.tracer.events)
        last_ts = -1.0
        for record in events:
            assert record["ph"] in ("X", "i", "C")
            assert isinstance(record["name"], str) and record["name"]
            assert record["ts"] >= 0
            assert record["pid"] == 0 and record["tid"] == 0
            # Emission order is timestamp order on the logical clock.
            assert record["ts"] >= last_ts
            last_ts = record["ts"]
            if record["ph"] == "X":
                assert record["dur"] > 0
            if record["ph"] == "i":
                assert record["s"] == "t"
            if record["ph"] == "C":
                assert all(isinstance(v, float)
                           for v in record["args"].values())

    def test_span_tree_is_well_nested(self):
        _table, telemetry = _traced_run()
        spans = telemetry.tracer.spans()
        assert spans, "expected spans from an instrumented run"
        stack = []
        for span in spans:  # emission order = start order
            end = span.ts_us + span.dur_us
            while stack and span.ts_us >= stack[-1]:
                stack.pop()
            if stack:
                assert end <= stack[-1] + 1e-9, "overlapping sibling spans"
            stack.append(end)

    def test_jsonl_export(self, tmp_path):
        _table, telemetry = _traced_run(2000)
        path = write_jsonl(telemetry.tracer, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(telemetry.tracer.events)
        first = json.loads(lines[0])
        assert {"name", "cat", "ph", "ts_us", "dur_us", "depth",
                "args"} <= set(first)


class TestPrometheusExport:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("lock.conflicts").inc(4)
        registry.gauge("fill.global").set(0.625)
        hist = registry.histogram("probe_length", (1.0, 2.0))
        hist.observe_count(1.0, 8)
        hist.observe_count(2.0, 2)
        text = prometheus_text(registry)
        assert "# TYPE lock_conflicts counter\nlock_conflicts 4" in text
        assert "# TYPE fill_global gauge\nfill_global 0.625" in text
        assert 'probe_length_bucket{le="1"} 8' in text
        assert 'probe_length_bucket{le="2"} 10' in text
        assert 'probe_length_bucket{le="+Inf"} 10' in text
        assert "probe_length_sum 12" in text
        assert "probe_length_count 10" in text
        assert text.endswith("\n")

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("resize.upsizes-total").inc()
        text = prometheus_text(registry)
        assert "resize_upsizes_total 1" in text


class TestZeroOverhead:
    def test_default_table_has_null_telemetry(self):
        table = DyCuckooTable()
        assert table.telemetry is NULL_TELEMETRY
        assert not table.telemetry.enabled
        assert table.telemetry.tracer is NULL_TRACER

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", x=1):
            NULL_TRACER.instant("nothing")
            NULL_TRACER.counter("zero", 1)
        NULL_TRACER.advance(5.0)
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.instants() == []
        assert NULL_TRACER.counters() == []

    def test_no_counter_drift_versus_uninstrumented_run(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=8,
                                min_buckets=8)
        keys = unique_keys(8000, seed=11)

        plain = DyCuckooTable(config)
        traced = DyCuckooTable(config)
        traced.set_telemetry(Telemetry())
        for table in (plain, traced):
            table.insert(keys, keys * np.uint64(3))
            table.find(keys[:4000])
            table.delete(keys[:7000])
            table.validate()
        # Identical event counters -> identical simulated time/Mops.
        assert plain.stats.snapshot() == traced.stats.snapshot()
        assert plain.to_dict() == traced.to_dict()
        # And the instrumented run did record telemetry.
        assert len(traced.telemetry.tracer.events) > 0

    def test_identical_simulated_seconds_under_runner(self):
        spec = dataset_by_name("COM")
        keys, values = spec.generate(scale=0.0003, seed=5)
        results = []
        for instrument in (False, True):
            table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8))
            if instrument:
                table.set_telemetry(Telemetry())
            workload = DynamicWorkload(keys, values, batch_size=200, seed=5)
            run = run_dynamic(table, workload,
                              cost_model=CostModel(overhead_scale=0.0003))
            results.append(run)
        plain, traced = results
        assert plain.total_seconds == traced.total_seconds
        assert plain.mops == traced.mops
        assert plain.fill_series == traced.fill_series


class TestResizeLifecycle:
    """One-shot resize lifecycle (``incremental_resize=False``)."""

    def test_upsize_lifecycle_spans(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8,
                                             min_buckets=8,
                                             incremental_resize=False))
        telemetry = table.set_telemetry(Telemetry())
        keys = unique_keys(4000, seed=7)
        table.insert(keys, keys)
        tracer = telemetry.tracer
        upsizes = tracer.spans("resize.upsize")
        assert len(upsizes) == table.stats.upsizes > 0
        assert len(tracer.instants("resize.trigger")) >= len(upsizes)
        # Each upsize contains a plan and a rehash phase.
        assert len(tracer.spans("resize.rehash")) >= len(upsizes)
        assert len(tracer.spans("resize.plan")) >= len(upsizes)

    def test_downsize_lifecycle_with_spill(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8,
                                             min_buckets=8,
                                             incremental_resize=False))
        telemetry = table.set_telemetry(Telemetry())
        keys = unique_keys(6000, seed=9)
        table.insert(keys, keys)
        table.delete(keys[:5500])
        tracer = telemetry.tracer
        downs = tracer.spans("resize.downsize")
        assert len(downs) == table.stats.downsizes > 0
        spills = tracer.spans("resize.spill")
        assert len(spills) == len(downs)
        # Spill spans nest inside their downsize span.
        for down, spill in zip(downs, spills):
            assert down.ts_us < spill.ts_us
            assert spill.ts_us + spill.dur_us <= down.ts_us + down.dur_us
            assert spill.depth == down.depth + 1
        triggers = [e for e in tracer.instants("resize.trigger")
                    if e.args.get("reason") == "theta<alpha"]
        assert triggers, "downsize without a theta<alpha trigger"

    def test_metrics_mirror_stats(self):
        table, telemetry = _traced_run()
        counters = telemetry.metrics.counters
        assert counters["resize.upsizes"].value == table.stats.upsizes
        assert counters["resize.downsizes"].value == table.stats.downsizes
        assert counters["evictions"].value == table.stats.evictions
        assert (counters["lock.acquisitions"].value
                == table.stats.lock_acquisitions)
        assert counters["lock.conflicts"].value == table.stats.lock_conflicts
        hist = telemetry.metrics.histograms["probe_length"]
        assert hist.total == table.stats.finds


class TestEpochLifecycle:
    """Incremental (default) resize lifecycle: epoch spans and slices."""

    def test_upsize_epoch_spans_and_slices(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8,
                                             min_buckets=8))
        telemetry = table.set_telemetry(Telemetry())
        keys = unique_keys(4000, seed=7)
        table.insert(keys, keys)
        tracer = telemetry.tracer
        epochs = tracer.spans("resize.upsize_epoch")
        assert len(epochs) == table.stats.upsizes > 0
        assert len(tracer.spans("resize.plan")) >= len(epochs)
        # No one-shot rehash span: entries moved in bounded slices.
        assert not tracer.spans("resize.rehash")
        assert table.stats.migration_slices > 0
        migrates = tracer.instants("resize.migrate")
        assert len(migrates) == table.stats.migration_slices
        # Every epoch except possibly the newest (still draining across
        # future batches) has completed and closed its dual view.
        completes = tracer.instants("resize.epoch_complete")
        assert len(completes) >= len(epochs) - 1
        open_epochs = sum(st.migration is not None
                          for st in table.subtables)
        assert len(completes) + open_epochs == len(epochs)
        table.finalize_resizes()
        assert all(st.migration is None for st in table.subtables)
        check_invariants(table)

    def test_downsize_epoch_completes(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8,
                                             min_buckets=8))
        telemetry = table.set_telemetry(Telemetry())
        keys = unique_keys(6000, seed=9)
        table.insert(keys, keys)
        table.delete(keys[:5500])
        tracer = telemetry.tracer
        opens = [e for e in tracer.instants("resize.epoch_open")
                 if e.args.get("kind") == "downsize"]
        assert len(opens) == table.stats.downsizes > 0
        table.finalize_resizes()
        assert all(st.migration is None for st in table.subtables)
        check_invariants(table)


class TestDynamicWorkloadTrace:
    """The acceptance-criterion scenario: a Figure-12-style DyCuckoo run
    yields a Chrome trace with a complete resize lifecycle and
    per-subtable fill-factor gauge samples."""

    @pytest.fixture(scope="class")
    def fig12_trace(self):
        spec = dataset_by_name("COM")
        keys, values = spec.generate(scale=0.0005, seed=12)
        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8))
        telemetry = table.set_telemetry(Telemetry())
        workload = DynamicWorkload(keys, values, batch_size=250, seed=4)
        run = run_dynamic(table, workload,
                          cost_model=CostModel(overhead_scale=0.0005))
        return table, telemetry, run

    def test_batch_spans_cover_simulated_time(self, fig12_trace):
        _table, telemetry, run = fig12_trace
        batches = telemetry.tracer.spans("batch")
        assert len(batches) == len(run.batches)
        for span, batch in zip(batches, run.batches):
            assert span.dur_us >= batch.simulated_seconds * 1e6

    def test_fill_gauges_sampled_per_batch(self, fig12_trace):
        table, telemetry, run = fig12_trace
        samples = telemetry.tracer.counters("fill.subtable")
        assert len(samples) == len(run.batches)
        num_subtables = table.table.num_tables
        for sample in samples:
            assert len(sample.args) == num_subtables
            assert all(0.0 <= v <= 1.0 for v in sample.args.values())
        gauge = telemetry.metrics.gauges["fill.global"]
        assert gauge.series == pytest.approx(run.fill_series)

    def test_complete_resize_lifecycle_present(self, fig12_trace):
        table, telemetry, _run = fig12_trace
        tracer = telemetry.tracer
        assert table.stats.upsizes > 0 and table.stats.downsizes > 0
        assert tracer.instants("resize.trigger")
        # Automatic resizes run as incremental epochs: open events,
        # bounded migrate slices, and a completion marker per epoch.
        opens = tracer.instants("resize.epoch_open")
        assert len(opens) == table.stats.upsizes + table.stats.downsizes
        assert tracer.instants("resize.migrate")
        assert tracer.instants("resize.epoch_complete")

    def test_chrome_artifact_written_via_env_var(self, fig12_trace,
                                                 tmp_path, monkeypatch):
        _table, telemetry, _run = fig12_trace
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        path = maybe_dump_trace("fig12_test", telemetry.tracer)
        assert path is not None and path.exists()
        parsed = json.loads(path.read_text())
        names = {e["name"] for e in parsed["traceEvents"]}
        assert {"batch", "resize.trigger", "resize.epoch_open",
                "resize.migrate", "fill.subtable"} <= names

    def test_artifact_skipped_without_env_var(self, fig12_trace,
                                              monkeypatch):
        _table, telemetry, _run = fig12_trace
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert maybe_dump_trace("nope", telemetry.tracer) is None


class TestKernelTracing:
    def test_round_scheduler_and_arbiter_emit(self):
        from repro.gpusim.kernel import LockArbiter, RoundScheduler

        class _Warp:
            def __init__(self):
                self.steps = 0

            def finished(self):
                return self.steps >= 3

            def step(self, _round):
                self.steps += 1

        tracer = Tracer()
        scheduler = RoundScheduler([_Warp(), _Warp()], tracer=tracer)
        rounds = scheduler.run()
        assert rounds == 3
        assert len(tracer.spans("kernel.run")) == 1
        assert len(tracer.instants("kernel.round")) == rounds

        arbiter = LockArbiter(tracer=tracer)
        assert arbiter.try_acquire(5)
        assert not arbiter.try_acquire(5)
        assert len(tracer.instants("lock.acquire")) == 1
        assert len(tracer.instants("lock.retry")) == 1

    def test_atomic_memory_round_event(self):
        from repro.gpusim.atomics import AtomicMemory

        tracer = Tracer()
        memory = AtomicMemory(4, tracer=tracer)
        memory.atomic_cas(0, 0, 1)
        memory.atomic_cas(0, 0, 2)
        memory.atomic_exch(1, 7)
        memory.end_round()
        event, = tracer.instants("atomic.round")
        assert event.args == {"ops": 3, "addresses": 2, "max_degree": 2}


class TestMixedBatchTracing:
    def test_mixed_batch_spans(self):
        from repro.core.batch_ops import (OP_DELETE, OP_FIND, OP_INSERT,
                                          execute_mixed)

        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        telemetry = table.set_telemetry(Telemetry())
        op_codes = np.array([OP_INSERT, OP_INSERT, OP_FIND, OP_DELETE])
        keys = np.array([1, 2, 1, 2], dtype=np.uint64)
        values = np.array([10, 20, 0, 0], dtype=np.uint64)
        result = execute_mixed(table, op_codes, keys, values)
        assert result.runs == 3
        batch, = telemetry.tracer.spans("mixed.batch")
        assert batch.args == {"ops": 4}
        kinds = [e.args["kind"]
                 for e in telemetry.tracer.instants("mixed.run")]
        assert kinds == ["insert", "find", "delete"]


class TestMergeRegistries:
    """Edge cases of the multi-registry roll-up."""

    def test_empty_mapping_yields_empty_registry(self):
        from repro.telemetry import merge_registries

        merged = merge_registries({})
        assert merged.counters == {}
        assert merged.gauges == {}
        assert merged.histograms == {}
        # Exporters must accept the empty merge unchanged.
        assert isinstance(prometheus_text(merged), str)
        assert merged.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_divergent_histogram_layouts_skip_rollup(self):
        from repro.telemetry import merge_registries

        a = MetricsRegistry()
        a.histogram("probe.length", buckets=(1.0, 2.0, 4.0)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("probe.length", buckets=(1.0, 8.0)).observe(5.0)

        merged = merge_registries({"s0": a, "s1": b})
        # Labelled copies preserve each source's own layout and counts.
        copy_a = merged.histograms["s0.probe.length"]
        copy_b = merged.histograms["s1.probe.length"]
        assert copy_a.buckets == (1.0, 2.0, 4.0)
        assert copy_b.buckets == (1.0, 8.0)
        assert copy_a.total == 1 and copy_b.total == 1
        # The roll-up keeps the first layout it saw and skips the
        # divergent source instead of silently mixing bucket meanings.
        roll = merged.histograms["probe.length"]
        assert roll.buckets == (1.0, 2.0, 4.0)
        assert roll.total == 1
        assert roll.sum == pytest.approx(1.5)

    def test_matching_histogram_layouts_sum(self):
        from repro.telemetry import merge_registries

        a = MetricsRegistry()
        a.histogram("chain.depth", buckets=(1.0, 2.0)).observe_many([0.5, 1.5])
        b = MetricsRegistry()
        b.histogram("chain.depth", buckets=(1.0, 2.0)).observe(3.0)

        merged = merge_registries({"s0": a, "s1": b})
        roll = merged.histograms["chain.depth"]
        assert roll.total == 3
        assert roll.sum == pytest.approx(5.0)
        assert list(roll.counts) == [1, 1, 1]

    def test_gauge_rollup_sums_across_sources(self):
        from repro.telemetry import merge_registries

        a = MetricsRegistry()
        a.gauge("fill.global").set(0.4)
        b = MetricsRegistry()
        b.gauge("fill.global").set(0.3)
        c = MetricsRegistry()
        c.gauge("fill.global").set(0.0)

        merged = merge_registries({"s0": a, "s1": b, "s2": c})
        # Labelled copies keep the per-source values...
        assert merged.gauges["s0.fill.global"].value == pytest.approx(0.4)
        assert merged.gauges["s1.fill.global"].value == pytest.approx(0.3)
        assert merged.gauges["s2.fill.global"].value == pytest.approx(0.0)
        # ...while the roll-up is the fleet-wide sum, including the
        # zero-valued source (sum semantics, not last-writer-wins).
        assert merged.gauges["fill.global"].value == pytest.approx(0.7)

    def test_gauge_single_source_rollup_equals_source(self):
        from repro.telemetry import merge_registries

        a = MetricsRegistry()
        a.gauge("stash.occupancy").set(5.0)
        merged = merge_registries({"only": a})
        assert merged.gauges["stash.occupancy"].value == pytest.approx(5.0)

    def test_counter_rollup_and_disjoint_names(self):
        from repro.telemetry import merge_registries

        a = MetricsRegistry()
        a.counter("find.hits").inc(3)
        b = MetricsRegistry()
        b.counter("find.hits").inc(4)
        b.counter("insert.evictions").inc(2)

        merged = merge_registries({"s0": a, "s1": b})
        assert merged.counters["find.hits"].value == 7
        # A name present in only one source still gets a roll-up.
        assert merged.counters["insert.evictions"].value == 2
        assert "s0.insert.evictions" not in merged.counters
