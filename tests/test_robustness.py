"""Robustness tests: adversarial inputs, growth ceilings, failure paths."""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.hashing import UniversalHash
from repro.core.table import DyCuckooTable
from repro.errors import CapacityError, InvalidConfigError

from .conftest import unique_keys


class TestGrowthCeiling:
    def test_ceiling_validated_against_initial(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(initial_buckets=64, bucket_capacity=32,
                           max_total_slots=100)

    def test_ceiling_stops_growth(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=4,
                                max_total_slots=8 * 4 * 4 * 2)
        table = DyCuckooTable(config)
        keys = unique_keys(1000, seed=1)
        with pytest.raises(CapacityError):
            table.insert(keys, keys)
        # The error message carries the diagnosis.
        try:
            table.insert(keys, keys)
        except CapacityError as err:
            assert "max_total_slots" in str(err)

    def test_zero_ceiling_means_unbounded(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=4,
                                max_total_slots=0)
        table = DyCuckooTable(config)
        keys = unique_keys(5000, seed=2)
        table.insert(keys, keys)
        _, found = table.find(keys)
        assert found.all()

    def test_workload_within_ceiling_works(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=8,
                                max_total_slots=1 << 14)
        table = DyCuckooTable(config)
        keys = unique_keys(5000, seed=3)  # fits comfortably in 16384 slots
        table.insert(keys, keys)
        table.validate()
        assert table.total_slots <= 1 << 14


class TestAdversarialKeys:
    def test_colliding_fold_keys_still_work(self):
        """Keys crafted to collide in the 31-bit fold must still store.

        ``k`` and ``k + (2**31 - 1)`` fold identically before the
        per-function premix; the premix de-correlates the functions, so
        such pairs must behave like ordinary distinct keys.
        """
        mersenne = (1 << 31) - 1
        base = np.arange(1, 201, dtype=np.uint64)
        shadow = base + np.uint64(mersenne)
        keys = np.concatenate([base, shadow])
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        table.insert(keys, keys * 2)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_dense_sequential_keys(self):
        """Sequential integers (worst case for weak hashes) spread fine."""
        keys = np.arange(10_000, dtype=np.uint64)
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        table.insert(keys, keys)
        table.validate()
        # No single bucket should be pathologically hot: the table grew
        # to a sane size rather than doubling forever.
        assert table.load_factor > 0.3

    def test_same_key_many_times(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=4))
        key = np.full(10_000, 77, dtype=np.uint64)
        vals = np.arange(10_000, dtype=np.uint64)
        table.insert(key, vals)
        assert len(table) == 1
        assert table.get(77) == 9999
        table.validate()


class TestHashQuality:
    def test_premix_decorrelates_fold_collisions(self):
        """Two functions disagree on fold-colliding keys (mostly)."""
        rng = np.random.default_rng(5)
        h1, h2 = UniversalHash.random(rng), UniversalHash.random(rng)
        mersenne = (1 << 31) - 1
        base = np.arange(1, 2001, dtype=np.uint64)
        shadow = base + np.uint64(mersenne)
        same_h1 = h1.bucket(base, 1024) == h1.bucket(shadow, 1024)
        same_h2 = h2.bucket(base, 1024) == h2.bucket(shadow, 1024)
        # A pair colliding under one function rarely collides under the
        # other: the premix makes the folds independent.
        both = same_h1 & same_h2
        assert both.mean() < 0.05


class TestErrorMessages:
    def test_capacity_error_reports_count(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=4,
                                auto_resize=False, max_eviction_rounds=8)
        table = DyCuckooTable(config)
        keys = unique_keys(8 * 4 * 4 + 64, seed=7)
        with pytest.raises(CapacityError) as excinfo:
            table.insert(keys, keys)
        assert "auto_resize disabled" in str(excinfo.value)
