"""Tests for the convenience API surface of DyCuckooTable."""

import numpy as np

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable

from .conftest import unique_keys


def seeded_table(n=500, seed=1):
    table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                         bucket_capacity=8))
    keys = unique_keys(n, seed=seed)
    table.insert(keys, keys * 3)
    return table, keys


class TestViews:
    def test_keys_values_aligned(self):
        table, keys = seeded_table()
        out_keys = table.keys()
        out_values = table.values()
        assert len(out_keys) == len(keys)
        assert np.array_equal(out_values, out_keys * np.uint64(3))

    def test_to_dict(self):
        table, keys = seeded_table(100)
        d = table.to_dict()
        assert len(d) == 100
        for k in keys[:10]:
            assert d[int(k)] == int(k) * 3

    def test_contains_operator(self):
        table, keys = seeded_table(50)
        assert int(keys[0]) in table
        assert 999_999_999_999 not in table


class TestClearCopyMerge:
    def test_clear(self):
        table, _keys = seeded_table(2000)
        table.clear()
        assert len(table) == 0
        assert all(st.n_buckets == table.config.initial_buckets
                   for st in table.subtables)
        table.validate()

    def test_copy_is_independent(self):
        table, keys = seeded_table(300)
        clone = table.copy()
        clone.validate()
        assert clone.to_dict() == table.to_dict()
        clone.delete(keys)
        assert len(clone) == 0
        assert len(table) == 300

    def test_copy_preserves_hashes(self):
        """Copied tables answer probes from identical bucket layouts."""
        table, keys = seeded_table(300)
        clone = table.copy()
        for src, dst in zip(table.subtables, clone.subtables):
            assert np.array_equal(src.keys, dst.keys)

    def test_from_items(self):
        keys = unique_keys(5000, seed=2)
        table = DyCuckooTable.from_items(keys, keys + np.uint64(1))
        assert len(table) == 5000
        _, found = table.find(keys)
        assert found.all()
        # Pre-sizing means no resize was needed during the build.
        assert table.stats.upsizes == 0

    def test_merge_from(self):
        a, keys_a = seeded_table(200, seed=3)
        b, keys_b = seeded_table(200, seed=4)
        overlap = keys_a[:50]
        b.insert(overlap, np.full(50, 999, dtype=np.uint64))
        a.merge_from(b)
        a.validate()
        # b's values win on collisions.
        values, found = a.find(overlap)
        assert found.all()
        assert (values == 999).all()
        assert len(a) == 200 + 200  # 50 overlapped

    def test_merge_from_empty(self):
        a, _ = seeded_table(10)
        b = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                         bucket_capacity=4))
        before = len(a)
        a.merge_from(b)
        assert len(a) == before
