"""Tests validating the implementation against the paper's theory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (conflict_optimality_gap, expected_conflicts,
                                 max_feasible_alpha, optimal_distribution,
                                 post_upsize_fill, resize_work_bound)
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError

from .conftest import unique_keys


class TestTheorem1Formulas:
    def test_expected_conflicts(self):
        # Two tables, loads 10 and 20, sizes 100 and 200:
        # C(10,2)/100 + C(20,2)/200 = 0.45 + 0.95.
        value = expected_conflicts(np.array([10, 20]),
                                   np.array([100, 200]))
        assert value == pytest.approx(0.45 + 0.95)

    def test_optimum_equalizes_marginal_rates(self):
        """The true optimum equalizes (2m-1)/(2n), not the raw terms.

        (See the analysis-module docstring for the relation to the
        paper's statement of Theorem 1.)
        """
        sizes = np.array([100.0, 100.0, 200.0, 200.0])
        m = optimal_distribution(300.0, sizes)
        marginals = (2 * m - 1) / (2 * sizes)
        assert np.allclose(marginals, marginals[0], rtol=1e-9)
        assert m.sum() == pytest.approx(300.0)

    def test_optimum_beats_alternatives(self):
        sizes = np.array([128.0, 128.0, 256.0, 256.0])
        best = optimal_distribution(400.0, sizes)
        best_value = expected_conflicts(best, sizes)
        rng = np.random.default_rng(0)
        for _ in range(50):
            weights = rng.random(4)
            alt = 400.0 * weights / weights.sum()
            assert expected_conflicts(alt, sizes) >= best_value - 1e-9

    def test_equal_sizes_split_equally(self):
        m = optimal_distribution(400.0, np.array([128.0] * 4))
        assert np.allclose(m, 100.0)

    def test_larger_tables_take_more(self):
        """Bigger subtables carry more load, at near-equal fill."""
        sizes = np.array([128.0, 256.0])
        m = optimal_distribution(200.0, sizes)
        assert m[1] > m[0]
        # Fills match to first order (proportional split).
        assert abs(m[1] / 256 - m[0] / 128) < 0.01

    def test_optimality_gap_zero_at_optimum(self):
        sizes = np.array([128.0, 256.0, 128.0])
        m = optimal_distribution(300.0, sizes)
        assert conflict_optimality_gap(m, sizes) == pytest.approx(0.0,
                                                                  abs=1e-9)

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=10, max_value=5000))
    @settings(max_examples=50, deadline=None)
    def test_optimum_feasible(self, d, total):
        sizes = np.array([128.0 * (1 + (i % 2)) for i in range(d)])
        m = optimal_distribution(float(total), sizes)
        assert m.sum() == pytest.approx(total, rel=1e-6)
        assert bool((m >= 0).all())

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            expected_conflicts(np.array([1.0]), np.array([0.0]))
        with pytest.raises(InvalidConfigError):
            optimal_distribution(-1.0, np.array([10.0]))


class TestFillBounds:
    def test_post_upsize_fill_formula(self):
        # d=4, none doubled yet: theta' = theta * 4/5.
        assert post_upsize_fill(0.85, 0, 4) == pytest.approx(0.85 * 0.8)
        # d=4, three already doubled: theta * 7/8.
        assert post_upsize_fill(0.85, 3, 4) == pytest.approx(0.85 * 7 / 8)

    def test_max_feasible_alpha(self):
        assert max_feasible_alpha(2) == pytest.approx(2 / 3)
        assert max_feasible_alpha(4) == pytest.approx(4 / 5)

    def test_config_enforces_the_bound(self):
        for d in (2, 3, 4, 5):
            limit = max_feasible_alpha(d)
            with pytest.raises(InvalidConfigError):
                DyCuckooConfig(num_tables=d, alpha=limit + 0.01,
                               beta=min(0.99, limit + 0.1))

    def test_worst_case_upsize_respects_alpha(self):
        """An upsize from theta = beta never lands below the bound."""
        for d in (2, 3, 4, 8):
            landing = post_upsize_fill(0.85, 0, d)
            assert landing >= 0.85 * d / (d + 1) - 1e-12


class TestTheoryMatchesImplementation:
    def test_router_stays_near_theorem1_optimum(self):
        """The weighted router keeps expected conflicts near optimal."""
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=256,
                                             bucket_capacity=16,
                                             auto_resize=False))
        keys = unique_keys(8000, seed=1)
        table.insert(keys, keys)
        gap = conflict_optimality_gap(table.subtable_loads(),
                                      table.subtable_sizes())
        assert gap < 0.02  # within 2% of the theoretical minimum

    def test_upsize_fill_matches_formula(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=256,
                                             bucket_capacity=16,
                                             auto_resize=False))
        keys = unique_keys(10_000, seed=2)
        table.insert(keys, keys)
        theta = table.load_factor
        predicted = post_upsize_fill(theta, 0, table.num_tables)
        table.upsize()
        assert table.load_factor == pytest.approx(predicted, rel=1e-9)

    def test_resize_touches_at_most_bound(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=256,
                                             bucket_capacity=16,
                                             auto_resize=False))
        keys = unique_keys(10_000, seed=3)
        table.insert(keys, keys)
        before = table.stats.snapshot()
        table.upsize()
        moved = table.stats.delta(before)["rehashed_entries"]
        assert moved <= resize_work_bound(len(table), table.num_tables)
