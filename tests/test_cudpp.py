"""Tests for the CUDPP-style per-slot cuckoo baseline."""

import numpy as np
import pytest

from repro.baselines.cudpp import CudppHashTable, choose_num_functions
from repro.errors import (CapacityError, InvalidConfigError,
                          UnsupportedOperationError)

from .conftest import unique_keys


class TestFunctionChoice:
    def test_auto_choice_bands(self):
        assert choose_num_functions(0.40) == 2
        assert choose_num_functions(0.50) == 2
        assert choose_num_functions(0.60) == 3
        assert choose_num_functions(0.80) == 4
        assert choose_num_functions(0.90) == 5

    def test_more_functions_for_denser_tables(self):
        fills = [0.4, 0.6, 0.8, 0.95]
        counts = [choose_num_functions(f) for f in fills]
        assert counts == sorted(counts)

    def test_rejects_bad_fill(self):
        with pytest.raises(InvalidConfigError):
            choose_num_functions(0.0)

    def test_explicit_override(self):
        table = CudppHashTable(1000, num_functions=3)
        assert table.num_functions == 3
        with pytest.raises(InvalidConfigError):
            CudppHashTable(1000, num_functions=6)


class TestOperations:
    def test_insert_find(self):
        keys = unique_keys(5000, seed=1)
        table = CudppHashTable(expected_entries=5000, target_fill=0.8)
        table.insert(keys, keys * 2)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_find_missing(self):
        keys = unique_keys(100, seed=2)
        table = CudppHashTable(expected_entries=200)
        table.insert(keys, keys)
        _, found = table.find(unique_keys(50, seed=3, low=1 << 40))
        assert not found.any()

    def test_no_delete(self):
        table = CudppHashTable(expected_entries=100)
        assert not table.SUPPORTS_DELETE
        with pytest.raises(UnsupportedOperationError):
            table.delete(np.array([1], dtype=np.uint64))

    def test_upsert(self):
        keys = unique_keys(200, seed=4)
        table = CudppHashTable(expected_entries=400)
        table.insert(keys, keys)
        table.insert(keys, keys + np.uint64(9))
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys + np.uint64(9))
        assert len(table) == 200

    def test_duplicate_batch_last_wins(self):
        table = CudppHashTable(expected_entries=16)
        table.insert(np.array([7, 7], dtype=np.uint64),
                     np.array([1, 2], dtype=np.uint64))
        assert len(table) == 1
        values, found = table.find(np.array([7], dtype=np.uint64))
        assert found[0] and values[0] == 2

    def test_over_capacity_raises(self):
        table = CudppHashTable(expected_entries=64, target_fill=0.85)
        keys = unique_keys(table.n_slots + 10, seed=5)
        with pytest.raises(CapacityError):
            table.insert(keys, keys)

    def test_dense_fill_achievable(self):
        """CUDPP reaches ~85% fill with its automatic function count."""
        keys = unique_keys(20_000, seed=6)
        table = CudppHashTable(expected_entries=20_000, target_fill=0.85)
        table.insert(keys, keys)
        table.validate()
        assert table.load_factor >= 0.80
        _, found = table.find(keys)
        assert found.all()

    def test_uses_random_accesses_not_buckets(self):
        """Per-slot probing is uncoalesced — the paper's critique."""
        keys = unique_keys(1000, seed=7)
        table = CudppHashTable(expected_entries=2000)
        table.insert(keys, keys)
        assert table.stats.random_accesses > 0
        assert table.stats.bucket_reads == 0

    def test_find_probe_budget(self):
        keys = unique_keys(1000, seed=8)
        table = CudppHashTable(expected_entries=2000)
        table.insert(keys, keys)
        before = table.stats.snapshot()
        table.find(keys)
        delta = table.stats.delta(before)
        assert delta["random_accesses"] <= table.num_functions * len(keys)

    def test_memory_footprint(self):
        table = CudppHashTable(expected_entries=1000)
        fp = table.memory_footprint()
        assert fp.total_slots == table.n_slots
        assert fp.slot_bytes == table.n_slots * 16
