"""Tests for the Horton-table extension baseline."""

import numpy as np
import pytest

from repro.baselines.horton import BUCKET_CAPACITY, HortonTable
from repro.errors import InvalidConfigError, UnsupportedOperationError

from .conftest import unique_keys


class TestBasics:
    def test_insert_find(self):
        keys = unique_keys(5000, seed=1)
        table = HortonTable(expected_entries=5000, target_fill=0.8)
        table.insert(keys, keys * 2)
        table.validate()
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys * np.uint64(2))

    def test_miss(self):
        keys = unique_keys(500, seed=2)
        table = HortonTable(expected_entries=1000)
        table.insert(keys, keys)
        _, found = table.find(unique_keys(100, seed=3, low=1 << 40))
        assert not found.any()

    def test_upsert(self):
        keys = unique_keys(1000, seed=4)
        table = HortonTable(expected_entries=2000)
        table.insert(keys, keys)
        table.insert(keys, keys + np.uint64(1))
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys + np.uint64(1))
        assert len(table) == 1000

    def test_no_delete(self):
        table = HortonTable(expected_entries=100)
        with pytest.raises(UnsupportedOperationError):
            table.delete(np.array([1], dtype=np.uint64))

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            HortonTable(expected_entries=0)
        with pytest.raises(InvalidConfigError):
            HortonTable(expected_entries=10, target_fill=0.99)

    def test_dense_fill(self):
        keys = unique_keys(20_000, seed=5)
        table = HortonTable(expected_entries=20_000, target_fill=0.85)
        table.insert(keys, keys)
        table.validate()
        assert table.load_factor > 0.55
        _, found = table.find(keys)
        assert found.all()


class TestHortonProperty:
    def test_find_probes_near_one(self):
        """The headline: FIND averages close to one probe.

        Hits in primary buckets and remap-decided misses both cost a
        single bucket read; only remapped items pay a second.
        """
        keys = unique_keys(20_000, seed=6)
        table = HortonTable(expected_entries=20_000, target_fill=0.80)
        table.insert(keys, keys)
        before = table.stats.snapshot()
        table.find(keys)
        delta = table.stats.delta(before)
        probes_per_find = delta["bucket_reads"] / len(keys)
        assert probes_per_find < 1.35

    def test_misses_usually_one_probe(self):
        keys = unique_keys(20_000, seed=7)
        table = HortonTable(expected_entries=20_000, target_fill=0.80)
        table.insert(keys, keys)
        misses = unique_keys(5000, seed=8, low=1 << 40)
        before = table.stats.snapshot()
        table.find(misses)
        delta = table.stats.delta(before)
        assert delta["bucket_reads"] / len(misses) < 1.3

    def test_type_b_conversion_happens(self):
        keys = unique_keys(20_000, seed=9)
        table = HortonTable(expected_entries=20_000, target_fill=0.85)
        table.insert(keys, keys)
        assert table.is_type_b.any()
        # Sacrificed slots reduce usable capacity.
        assert table.total_slots < table.n_buckets * BUCKET_CAPACITY
