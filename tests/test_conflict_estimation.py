"""Tests for the occupancy-based lock-conflict estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GTX_1080, V100
from repro.gpusim.kernel import REFERENCE_CONCURRENCY, estimate_lock_conflicts


class TestEstimateLockConflicts:
    def test_trivial_cases(self):
        assert estimate_lock_conflicts(0, 100) == 0
        assert estimate_lock_conflicts(1, 100) == 0
        assert estimate_lock_conflicts(100, 0) == 0

    def test_more_buckets_fewer_conflicts(self):
        few = estimate_lock_conflicts(100_000, 1_000)
        many = estimate_lock_conflicts(100_000, 100_000)
        assert few > many

    def test_scales_with_reference_concurrency(self):
        """A 1e6-op batch uses the device's full resident-warp count."""
        full = estimate_lock_conflicts(1_000_000, 1 << 20)
        # By construction the wave is ~1280 warps at this batch size.
        wave = round(1_000_000 * REFERENCE_CONCURRENCY)
        assert wave == 1280
        assert full > 0

    def test_explicit_resident_warps_override(self):
        auto = estimate_lock_conflicts(10_000, 1024)
        serial = estimate_lock_conflicts(10_000, 1024, resident_warps=1)
        assert serial == 0  # one warp at a time never collides
        assert auto >= serial

    def test_scale_invariance_of_conflict_rate(self):
        """Scaled batches keep roughly the same conflicts-per-op.

        This is the property that makes 1/1000-scale experiments
        comparable to the paper's: contention intensity depends on
        occupancy per bucket, preserved by the proportional wave size.
        (The per-bucket pressure must also scale: buckets shrink with
        the data.)
        """
        full = estimate_lock_conflicts(1_000_000, 1 << 20) / 1_000_000
        scaled = estimate_lock_conflicts(10_000, 1 << 13) / 10_000
        assert scaled == pytest.approx(full, rel=0.5)

    def test_tiny_batches_round_to_no_contention(self):
        """Below ~1k ops the proportional wave is a single warp."""
        assert estimate_lock_conflicts(500, 1 << 10) == 0

    @given(st.integers(min_value=2, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 6))
    @settings(max_examples=100, deadline=None)
    def test_never_negative_and_bounded(self, ops, buckets):
        conflicts = estimate_lock_conflicts(ops, buckets)
        assert conflicts >= 0
        # Can never exceed all-pairs collisions.
        assert conflicts <= ops * (ops - 1) / 2

    def test_bigger_device_more_conflicts(self):
        """More resident warps -> more simultaneous contention."""
        small = estimate_lock_conflicts(10 ** 7, 1 << 16, device=GTX_1080)
        big = estimate_lock_conflicts(10 ** 7, 1 << 16, device=V100)
        assert big >= small
