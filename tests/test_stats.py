"""Tests for the stats counters and memory footprint accounting."""

import pytest

from repro.core.stats import MemoryFootprint, TableStats


class TestTableStats:
    def test_starts_zeroed(self):
        stats = TableStats()
        assert all(v == 0 for v in stats.snapshot().values())

    def test_snapshot_is_copy(self):
        stats = TableStats()
        snap = stats.snapshot()
        stats.inserts += 5
        assert snap["inserts"] == 0

    def test_delta(self):
        stats = TableStats()
        stats.inserts = 10
        before = stats.snapshot()
        stats.inserts = 25
        stats.evictions = 3
        delta = stats.delta(before)
        assert delta["inserts"] == 15
        assert delta["evictions"] == 3
        assert delta["finds"] == 0

    def test_reset(self):
        stats = TableStats()
        stats.bucket_reads = 99
        stats.reset()
        assert stats.bucket_reads == 0

    def test_merge(self):
        a = TableStats()
        b = TableStats()
        a.inserts = 5
        b.inserts = 7
        b.upsizes = 2
        a.merge(b)
        assert a.inserts == 12
        assert a.upsizes == 2
        assert b.inserts == 7  # b untouched


class TestMemoryFootprint:
    def test_filled_factor(self):
        fp = MemoryFootprint(total_slots=100, live_entries=60,
                             slot_bytes=1600)
        assert fp.filled_factor == pytest.approx(0.6)

    def test_empty_table(self):
        fp = MemoryFootprint(total_slots=0, live_entries=0, slot_bytes=0)
        assert fp.filled_factor == 0.0

    def test_total_bytes(self):
        fp = MemoryFootprint(total_slots=10, live_entries=1,
                             slot_bytes=160, overhead_bytes=40)
        assert fp.total_bytes == 200

    def test_str(self):
        fp = MemoryFootprint(total_slots=100, live_entries=50,
                             slot_bytes=1_000_000)
        text = str(fp)
        assert "50/100" in text
        assert "50.0%" in text
