"""Tests for the stats counters and memory footprint accounting."""

import dataclasses

import pytest

from repro.core.stats import MemoryFootprint, TableStats


@dataclasses.dataclass
class _ExtendedStats(TableStats):
    """TableStats plus one counter, as a future PR would add one."""

    brand_new_counter: int = 0


class TestTableStats:
    def test_starts_zeroed(self):
        stats = TableStats()
        assert all(v == 0 for v in stats.snapshot().values())

    def test_snapshot_is_copy(self):
        stats = TableStats()
        snap = stats.snapshot()
        stats.inserts += 5
        assert snap["inserts"] == 0

    def test_delta(self):
        stats = TableStats()
        stats.inserts = 10
        before = stats.snapshot()
        stats.inserts = 25
        stats.evictions = 3
        delta = stats.delta(before)
        assert delta["inserts"] == 15
        assert delta["evictions"] == 3
        assert delta["finds"] == 0

    def test_reset(self):
        stats = TableStats()
        stats.bucket_reads = 99
        stats.reset()
        assert stats.bucket_reads == 0

    def test_merge(self):
        a = TableStats()
        b = TableStats()
        a.inserts = 5
        b.inserts = 7
        b.upsizes = 2
        a.merge(b)
        assert a.inserts == 12
        assert a.upsizes == 2
        assert b.inserts == 7  # b untouched


class TestFieldCoverage:
    """reset/snapshot/delta/merge must be derived from dataclass fields.

    These tests fail if any of the four methods is ever rewritten with a
    hard-coded field list: a newly added counter would silently desync.
    """

    def test_every_field_appears_in_snapshot_and_delta(self):
        stats = TableStats()
        field_names = [f.name for f in dataclasses.fields(TableStats)]
        # Give every counter a distinct nonzero value so a dropped field
        # cannot hide behind an accidental zero.
        expected = {}
        for value, name in enumerate(field_names, start=1):
            setattr(stats, name, value)
            expected[name] = value
        assert stats.snapshot() == expected
        assert stats.delta({}) == expected

    def test_reset_zeroes_every_field(self):
        stats = TableStats()
        for value, f in enumerate(dataclasses.fields(TableStats), start=1):
            setattr(stats, f.name, value)
        stats.reset()
        assert all(v == 0 for v in stats.snapshot().values())

    def test_merge_covers_every_field(self):
        a = TableStats()
        b = TableStats()
        for value, f in enumerate(dataclasses.fields(TableStats), start=1):
            setattr(a, f.name, value)
            setattr(b, f.name, 2 * value)
        a.merge(b)
        for value, f in enumerate(dataclasses.fields(TableStats), start=1):
            assert getattr(a, f.name) == 3 * value

    def test_added_field_is_picked_up_automatically(self):
        stats = _ExtendedStats()
        stats.brand_new_counter = 7
        assert stats.snapshot()["brand_new_counter"] == 7
        assert stats.delta({})["brand_new_counter"] == 7

        other = _ExtendedStats()
        other.brand_new_counter = 5
        stats.merge(other)
        assert stats.brand_new_counter == 12

        stats.reset()
        assert stats.brand_new_counter == 0


class TestMemoryFootprint:
    def test_filled_factor(self):
        fp = MemoryFootprint(total_slots=100, live_entries=60,
                             slot_bytes=1600)
        assert fp.filled_factor == pytest.approx(0.6)

    def test_empty_table(self):
        fp = MemoryFootprint(total_slots=0, live_entries=0, slot_bytes=0)
        assert fp.filled_factor == 0.0

    def test_total_bytes(self):
        fp = MemoryFootprint(total_slots=10, live_entries=1,
                             slot_bytes=160, overhead_bytes=40)
        assert fp.total_bytes == 200

    def test_str(self):
        fp = MemoryFootprint(total_slots=100, live_entries=50,
                             slot_bytes=1_000_000)
        text = str(fp)
        assert "50/100" in text
        assert "50.0%" in text
