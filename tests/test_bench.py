"""Tests for the measurement harness and report formatting."""

import numpy as np

from repro.baselines import DyCuckooAdapter, MegaKVTable, SlabHashTable
from repro.bench import (format_series, format_table, run_dynamic,
                         run_static, shape_check, sparkline)
from repro.core.config import DyCuckooConfig
from repro.workloads import DynamicWorkload

from .conftest import unique_keys


def small_workload(n=2000, batch=500, r=0.2, seed=0):
    keys = unique_keys(n, seed=seed)
    values = keys * np.uint64(2)
    return DynamicWorkload(keys, values, batch_size=batch, ratio_r=r,
                           seed=seed)


class TestRunStatic:
    def test_produces_throughputs(self):
        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=16,
                                               bucket_capacity=8))
        keys = unique_keys(3000, seed=1)
        result = run_static(table, keys, keys * 2, num_finds=1000)
        assert result.insert_ops == 3000
        assert result.find_ops == 1000
        assert result.insert_mops > 0
        assert result.find_mops > 0
        assert 0 < result.fill_factor <= 1

    def test_find_faster_than_insert(self):
        """Read-only probes always beat insertion with evictions."""
        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=16,
                                               bucket_capacity=8))
        keys = unique_keys(5000, seed=2)
        result = run_static(table, keys, keys, num_finds=5000)
        assert result.find_mops > result.insert_mops


class TestRunDynamic:
    def test_collects_batch_series(self):
        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                               bucket_capacity=8))
        result = run_dynamic(table, small_workload())
        assert len(result.batches) == 2 * small_workload().num_batches
        assert result.total_ops > 0
        assert result.mops > 0
        assert len(result.fill_series) == len(result.batches)
        assert result.peak_memory_bytes > 0

    def test_max_batches_cutoff(self):
        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                               bucket_capacity=8))
        result = run_dynamic(table, small_workload(), max_batches=3)
        assert len(result.batches) == 3

    def test_works_for_all_dynamic_tables(self):
        for table in (DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                                     bucket_capacity=8)),
                      MegaKVTable(initial_buckets=8),
                      SlabHashTable(n_buckets=64)):
            result = run_dynamic(table, small_workload())
            assert result.total_ops > 0, table.NAME
            assert all(b.simulated_seconds > 0 for b in result.batches)

    def test_phases_recorded(self):
        table = SlabHashTable(n_buckets=64)
        result = run_dynamic(table, small_workload())
        phases = {b.phase for b in result.batches}
        assert phases == {1, 2}


class TestReportFormatting:
    def test_format_table(self):
        text = format_table(["approach", "TW", "RE"],
                            [["DyCuckoo", 123.4, 110.0],
                             ["MegaKV", 89.9, 95.5]],
                            title="Insert Mops")
        assert "Insert Mops" in text
        assert "DyCuckoo" in text
        assert "123.4" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_compresses(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_series(self):
        text = format_series("Fill factor", {"DyCuckoo": [0.5, 0.6, 0.7],
                                             "MegaKV": [0.9, 0.4, 0.8]})
        assert "Fill factor" in text
        assert "DyCuckoo" in text
        assert "max=0.70" in text

    def test_shape_check(self):
        assert "PASS" in shape_check("x", True)
        assert "FAIL" in shape_check("x", False)
