"""Tests for table serialization (save/load round-trip)."""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.persistence import FORMAT_VERSION, load_table, save_table
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError

from .conftest import unique_keys


class TestRoundTrip:
    def test_contents_preserved(self, tmp_path):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        keys = unique_keys(3000, seed=1)
        table.insert(keys, keys * 5)
        table.delete(keys[:500])
        path = tmp_path / "table.npz"
        save_table(table, path)

        loaded = load_table(path)
        loaded.validate()
        assert len(loaded) == len(table)
        values, found = loaded.find(keys)
        orig_values, orig_found = table.find(keys)
        assert np.array_equal(found, orig_found)
        assert np.array_equal(values[found], orig_values[orig_found])

    def test_config_preserved(self, tmp_path):
        config = DyCuckooConfig(num_tables=3, bucket_capacity=4,
                                initial_buckets=32, alpha=0.25, beta=0.75,
                                routing="uniform")
        table = DyCuckooTable(config)
        path = tmp_path / "t.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.config == config

    def test_stats_preserved(self, tmp_path):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        keys = unique_keys(1000, seed=2)
        table.insert(keys, keys)
        path = tmp_path / "t.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.stats.snapshot() == table.stats.snapshot()

    def test_loaded_table_continues_working(self, tmp_path):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        keys = unique_keys(2000, seed=3)
        table.insert(keys[:1000], keys[:1000])
        path = tmp_path / "t.npz"
        save_table(table, path)

        loaded = load_table(path)
        loaded.insert(keys[1000:], keys[1000:])
        loaded.validate()
        _, found = loaded.find(keys)
        assert found.all()
        loaded.delete(keys)
        assert len(loaded) == 0

    def test_empty_table_round_trip(self, tmp_path):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=4))
        path = tmp_path / "empty.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert len(loaded) == 0
        loaded.validate()

    def test_version_check(self, tmp_path):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=4))
        path = tmp_path / "t.npz"
        save_table(table, path)
        # Corrupt the version field.
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["version"] = np.asarray([FORMAT_VERSION + 1])
        np.savez_compressed(path, **payload)
        with pytest.raises(InvalidConfigError):
            load_table(path)

    def test_resized_table_round_trip(self, tmp_path):
        """Subtables of different sizes serialize correctly."""
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                             bucket_capacity=8))
        keys = unique_keys(5000, seed=4)
        table.insert(keys, keys)  # triggers several upsizes
        sizes = [st.n_buckets for st in table.subtables]
        assert len(set(sizes)) >= 1
        path = tmp_path / "resized.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert [st.n_buckets for st in loaded.subtables] == sizes
        loaded.validate()
        _, found = loaded.find(keys)
        assert found.all()
