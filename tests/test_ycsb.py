"""Tests for the YCSB-style workload generator."""

import numpy as np
import pytest

from repro.baselines import DyCuckooAdapter
from repro.bench import execute_operations
from repro.core.config import DyCuckooConfig
from repro.errors import InvalidConfigError
from repro.workloads import (CORE_WORKLOADS, WORKLOAD_A, WORKLOAD_C,
                             WORKLOAD_D, WORKLOAD_F, YcsbMix, YcsbWorkload)


class TestMixDefinitions:
    def test_core_workloads_registered(self):
        assert set(CORE_WORKLOADS) == {"A", "B", "C", "D", "F"}

    def test_proportions_sum_to_one(self):
        for mix in CORE_WORKLOADS.values():
            assert (mix.read + mix.update + mix.insert + mix.rmw
                    == pytest.approx(1.0))

    def test_invalid_mix_rejected(self):
        with pytest.raises(InvalidConfigError):
            YcsbMix("X", read=0.5, update=0.0, insert=0.0, rmw=0.0,
                    distribution="zipfian")
        with pytest.raises(InvalidConfigError):
            YcsbMix("X", read=1.0, update=0.0, insert=0.0, rmw=0.0,
                    distribution="pareto")


class TestGeneration:
    def _workload(self, mix, **kw):
        defaults = dict(num_records=2000, num_operations=10_000,
                        batch_size=1000, seed=1)
        defaults.update(kw)
        return YcsbWorkload(mix, **defaults)

    def test_load_phase(self):
        wl = self._workload(WORKLOAD_A)
        load = wl.load_phase()
        assert load.kind == "insert"
        assert len(load.keys) == 2000
        assert len(np.unique(load.keys)) == 2000

    def test_run_phase_total_ops(self):
        wl = self._workload(WORKLOAD_A)
        total = sum(
            sum(len(op) for op in batch.operations)
            for batch in wl.run_phase())
        assert total == 10_000

    def test_workload_c_is_read_only(self):
        wl = self._workload(WORKLOAD_C)
        for batch in wl.run_phase():
            assert all(op.kind == "find" for op in batch.operations)

    def test_workload_a_mix(self):
        wl = self._workload(WORKLOAD_A)
        batch = next(wl.run_phase())
        kinds = {op.kind: len(op) for op in batch.operations}
        assert kinds["find"] == 500
        assert kinds["insert"] == 500

    def test_workload_f_rmw_pairs(self):
        wl = self._workload(WORKLOAD_F)
        batch = next(wl.run_phase())
        # 50% reads, then the RMW pair: find + insert over the same keys.
        assert [op.kind for op in batch.operations] == ["find", "find",
                                                        "insert"]
        rmw_find, rmw_insert = batch.operations[1], batch.operations[2]
        assert np.array_equal(rmw_find.keys, rmw_insert.keys)

    def test_workload_d_inserts_fresh_keys(self):
        wl = self._workload(WORKLOAD_D)
        seen = set(wl.load_phase().keys.tolist())
        for batch in wl.run_phase():
            for op in batch.operations:
                if op.kind == "insert":
                    fresh = set(op.keys.tolist())
                    assert not (fresh & seen)
                    seen |= fresh

    def test_zipfian_skew(self):
        wl = self._workload(WORKLOAD_C, num_operations=50_000)
        counts: dict = {}
        for batch in wl.run_phase():
            for op in batch.operations:
                for k in op.keys.tolist():
                    counts[k] = counts.get(k, 0) + 1
        top_share = sum(sorted(counts.values(), reverse=True)[:20]) / 50_000
        assert top_share > 0.15  # hot records dominate

    def test_requests_target_loaded_records(self):
        wl = self._workload(WORKLOAD_C)
        loaded = set(wl.load_phase().keys.tolist())
        for batch in wl.run_phase():
            for op in batch.operations:
                assert set(op.keys.tolist()) <= loaded

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            YcsbWorkload(WORKLOAD_A, num_records=0)
        with pytest.raises(InvalidConfigError):
            YcsbWorkload(WORKLOAD_A, batch_size=0)


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(CORE_WORKLOADS))
    def test_runs_against_dycuckoo(self, name):
        wl = YcsbWorkload(CORE_WORKLOADS[name], num_records=2000,
                          num_operations=6000, batch_size=1000, seed=2)
        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                               bucket_capacity=8))
        load = wl.load_phase()
        table.insert(load.keys, load.values)
        for batch in wl.run_phase():
            execute_operations(table, batch.operations)
        table.validate()
        # Every loaded record is still present (no workload deletes).
        _, found = table.find(load.keys)
        assert found.all()
