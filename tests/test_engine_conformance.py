"""Warp-vs-cohort engine conformance (the contract of PR 4).

The cohort engine (:mod:`repro.gpusim.cohort`) must be *bit-for-bit*
equivalent to the per-warp reference interpreter: identical results,
identical storage mutations, identical aggregate cost counters
(transactions, lock acquisitions/conflicts, rounds, evictions), and an
identical telemetry stream.  These tests drive both engines over twin
tables — deterministic trouble-spot scenarios first, then a Hypothesis
property test over random mixed batches with resize storms and fault
plans.

``REPRO_FUZZ_EXAMPLES`` scales the property-test example budget.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch_ops import (OP_DELETE, OP_FIND, OP_INSERT,
                                  EncodedBatch, execute_mixed)
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError
from repro.faults import default_chaos_plan
from repro.kernels import (run_delete_kernel, run_find_kernel,
                           run_spin_insert_kernel, run_voter_insert_kernel)
from repro.sanitizer import Sanitizer
from repro.shard import ShardedDyCuckoo
from repro.telemetry import Telemetry

from .conftest import unique_keys

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))


def twin_tables(buckets=64, capacity=8, seed=3, **kw):
    """Two identically configured, identically seeded tables.

    Both carry a live :class:`~repro.sanitizer.Sanitizer`, so every
    conformance scenario doubles as a race/lock-discipline audit of
    both engines.
    """
    def make():
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=buckets, bucket_capacity=capacity,
            auto_resize=False, seed=seed, **kw))
        table.set_sanitizer(Sanitizer())
        return table
    return make(), make()


def assert_tables_identical(tw: DyCuckooTable, tc: DyCuckooTable) -> None:
    """Storage arrays, sizes, victim counter bit-equal; sanitizers clean."""
    assert tw._victim_counter == tc._victim_counter
    for sw, sc in zip(tw.subtables, tc.subtables):
        assert sw.size == sc.size
        assert np.array_equal(sw.keys, sc.keys)
        assert np.array_equal(sw.values, sc.values)
    for table in (tw, tc):
        san = table.sanitizer
        if san.enabled:
            assert san.ok, [str(v) for v in san.violations]
            assert not san.report()["subtable_locks_held"]


class TestKernelEntryPoints:
    def test_insert_find_delete_identical(self):
        tw, tc = twin_tables()
        keys = unique_keys(1200, seed=21)
        values = keys * np.uint64(7)
        rw = run_voter_insert_kernel(tw, keys, values)
        rc = run_voter_insert_kernel(tc, keys, values, engine="cohort")
        assert rw == rc
        assert_tables_identical(tw, tc)

        vw, fw, rw = run_find_kernel(tw, keys)
        vc, fc, rc = run_find_kernel(tc, keys, engine="cohort")
        assert np.array_equal(vw, vc) and np.array_equal(fw, fc)
        assert rw == rc

        dw, rw = run_delete_kernel(tw, keys[::3])
        dc, rc = run_delete_kernel(tc, keys[::3], engine="cohort")
        assert np.array_equal(dw, dc)
        assert rw == rc
        assert_tables_identical(tw, tc)

    def test_spin_variant_identical(self):
        tw, tc = twin_tables(buckets=16)
        keys = unique_keys(400, seed=22)
        rw = run_spin_insert_kernel(tw, keys, keys)
        rc = run_spin_insert_kernel(tc, keys, keys, engine="cohort")
        assert rw == rc
        assert_tables_identical(tw, tc)

    def test_high_fill_eviction_chains_identical(self):
        """~97% fill maximizes eviction chains and lock contention."""
        tw, tc = twin_tables(buckets=8, capacity=8)
        keys = unique_keys(248, seed=23)
        rw = run_voter_insert_kernel(tw, keys, keys)
        rc = run_voter_insert_kernel(tc, keys, keys, engine="cohort")
        assert rw == rc
        assert rw.evictions > 0  # the scenario must exercise eviction
        assert_tables_identical(tw, tc)

    def test_duplicate_heavy_batch_identical(self):
        """Duplicates inside a batch hit the scalar-replay hazard path."""
        base = unique_keys(60, seed=24)
        keys = np.concatenate([base, base[:30], base[:15]])
        values = np.arange(len(keys), dtype=np.uint64)
        tw, tc = twin_tables(buckets=8, capacity=8)
        rw = run_voter_insert_kernel(tw, keys, values)
        rc = run_voter_insert_kernel(tc, keys, values, engine="cohort")
        assert rw == rc
        assert_tables_identical(tw, tc)

    def test_unknown_engine_rejected(self):
        table, _ = twin_tables()
        with pytest.raises(InvalidConfigError):
            run_find_kernel(table, unique_keys(4), engine="simd")
        with pytest.raises(InvalidConfigError):
            execute_mixed(table, [OP_FIND], [1], engine="simd")

    def test_fault_plans_native_soa_conformance(self):
        """Fault-bearing inserts run natively in the SoA path.

        The cohort engine no longer delegates to the warp interpreter
        when a fault plan is armed — it consults the same (seed, site,
        index) decisions through the vectorized window check — so the
        result, the plan's invocation counters, the exact fired-fault
        sequence, storage, and sanitizer stats must all be
        bit-identical to the reference.
        """
        tw, tc = twin_tables()
        pw = tw.set_fault_plan(default_chaos_plan(seed=5))
        pc = tc.set_fault_plan(default_chaos_plan(seed=5))
        keys = unique_keys(300, seed=25)
        rw = run_voter_insert_kernel(tw, keys, keys)
        rc = run_voter_insert_kernel(tc, keys, keys, engine="cohort")
        assert rw == rc
        assert pw.fired, "the chaos plan must actually inject faults"
        assert pw.fired == pc.fired
        assert pw.invocations() == pc.invocations()
        assert tw.sanitizer.stats == tc.sanitizer.stats
        assert_tables_identical(tw, tc)

    def test_scripted_fault_plans_conform(self):
        """Scripted (exact-index) plans replay identically on both
        engines, including multi-round stalls."""
        from repro.faults import FaultPlan

        fired = ([["lock.acquire", i, 1] for i in (0, 3, 7, 11, 40)]
                 + [["lock.stall", i, 3] for i in (2, 9, 25)])
        tw, tc = twin_tables(buckets=16)
        pw = tw.set_fault_plan(FaultPlan.from_script(
            {"seed": 1, "fired": fired}))
        pc = tc.set_fault_plan(FaultPlan.from_script(
            {"seed": 1, "fired": fired}))
        keys = unique_keys(200, seed=26)
        rw = run_voter_insert_kernel(tw, keys, keys)
        rc = run_voter_insert_kernel(tc, keys, keys, engine="cohort")
        assert rw == rc
        assert [(f.site, f.index, f.param) for f in pw.fired] \
            == [(f.site, f.index, f.param) for f in pc.fired]
        assert pw.invocations() == pc.invocations()
        assert tw.sanitizer.stats == tc.sanitizer.stats
        assert_tables_identical(tw, tc)


class TestHazardResolution:
    """The vectorized key-coincidence resolver (cohort phase 2).

    Duplicate keys in one batch share a router target and therefore a
    lock, so genuine hazards need either eviction retargeting or
    adversarial targets.  These tests drive the engines directly with
    crafted per-key targets (always one of the key's legal pair
    members) to force snapshot/live divergence, then require bit
    equality everywhere.
    """

    def _run_adversarial(self, seed, n=256, buckets=8, capacity=8):
        from repro.core.table import encode_keys
        from repro.gpusim.cohort import cohort_insert
        from repro.kernels.insert import _run_insert_warps

        rng = np.random.default_rng(seed)
        tw, tc = twin_tables(buckets=buckets, capacity=capacity)
        base = rng.integers(1, n // 2, size=n).astype(np.uint64)
        values = np.arange(1, n + 1, dtype=np.uint64)
        codes = encode_keys(base)
        first, second = tw.pair_hash.tables_for(codes)
        coin = rng.integers(0, 2, size=n).astype(bool)
        targets = np.where(coin, first, second)
        rw = _run_insert_warps(tw, codes, values, targets, True, None)
        rc = cohort_insert(tc, codes, values, targets, voter=True)
        return tw, tc, rw, rc

    def test_adversarial_targets_identical(self):
        hazardous = 0
        for seed in range(8):
            tw, tc, rw, rc = self._run_adversarial(seed)
            assert dataclasses.asdict(rw) == dataclasses.asdict(rc)
            assert tw.sanitizer.stats == tc.sanitizer.stats
            assert_tables_identical(tw, tc)
            hazardous += rc.hazard_rounds
        assert hazardous > 0, \
            "the scenario bank must exercise the hazard resolver"

    def test_hazard_rounds_counted_by_profiler(self):
        from repro.telemetry import Profiler

        hazardous = 0
        for seed in range(8):
            from repro.core.table import encode_keys
            from repro.gpusim.cohort import cohort_insert

            rng = np.random.default_rng(seed)
            table, _ = twin_tables(buckets=8, capacity=8)
            prof = table.set_profiler(Profiler())
            n = 256
            base = rng.integers(1, n // 2, size=n).astype(np.uint64)
            codes = encode_keys(base)
            first, second = table.pair_hash.tables_for(codes)
            coin = rng.integers(0, 2, size=n).astype(bool)
            targets = np.where(coin, first, second)
            prof.begin_kernel("insert", n)
            result = cohort_insert(
                table, codes, np.arange(1, n + 1, dtype=np.uint64),
                targets, voter=True)
            prof.end_kernel()
            assert prof.hazard_rounds >= result.hazard_rounds
            assert prof.hazard_lanes >= result.hazard_lanes
            hazardous += result.hazard_rounds
        assert hazardous > 0

    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(base=st.lists(st.integers(1, 40), min_size=16, max_size=96),
           seed=st.integers(0, 31))
    def test_duplicate_majority_batches_conform(self, base, seed):
        """Batches with >= 50% duplicate keys per warp, end to end.

        Each drawn key is repeated twice adjacently, so every 32-lane
        warp holds at most 16 distinct keys — a guaranteed >= 50%
        duplicate rate — and the whole public pipeline (router,
        kernels, sanitizer stream) must stay bit-identical.
        """
        rng = np.random.default_rng(seed)
        keys = np.repeat(np.array(base, dtype=np.uint64), 2)
        keys = rng.permutation(keys)
        values = rng.integers(1, 1 << 32, size=len(keys)).astype(np.uint64)
        tw, tc = twin_tables(buckets=8, capacity=8)
        rw = run_voter_insert_kernel(tw, keys, values)
        rc = run_voter_insert_kernel(tc, keys, values, engine="cohort")
        assert dataclasses.asdict(rw) == dataclasses.asdict(rc)
        vw, fw, qw = run_find_kernel(tw, keys)
        vc, fc, qc = run_find_kernel(tc, keys, engine="cohort")
        assert np.array_equal(vw, vc) and np.array_equal(fw, fc)
        assert qw == qc
        assert fw.all(), "every inserted key must be found"
        assert tw.sanitizer.stats == tc.sanitizer.stats
        assert_tables_identical(tw, tc)


class TestTelemetryStream:
    def _stream(self, telemetry):
        spans = [(e.name, e.category, e.args) for e in
                 telemetry.tracer.spans()]
        counters = {name: c.value for name, c in
                    telemetry.metrics.counters.items()}
        return spans, counters

    def test_identical_span_and_counter_streams(self):
        tw, tc = twin_tables()
        mw = tw.set_telemetry(Telemetry())
        mc = tc.set_telemetry(Telemetry())
        keys = unique_keys(500, seed=26)
        run_voter_insert_kernel(tw, keys, keys)
        run_find_kernel(tw, keys)
        run_delete_kernel(tw, keys[::2])
        run_voter_insert_kernel(tc, keys, keys, engine="cohort")
        run_find_kernel(tc, keys, engine="cohort")
        run_delete_kernel(tc, keys[::2], engine="cohort")
        spans_w, counters_w = self._stream(mw)
        spans_c, counters_c = self._stream(mc)
        assert counters_w == counters_c
        assert len(spans_w) == len(spans_c)
        for (nw, cw, aw), (nc, cc, ac) in zip(spans_w, spans_c):
            assert (nw, cw) == (nc, cc)
            assert aw.get("n") == ac.get("n")
            assert aw["engine"] == "warp" and ac["engine"] == "cohort"


class TestMixedBatchDispatch:
    def _workload(self, n=3000, seed=27):
        rng = np.random.default_rng(seed)
        ops = rng.choice([OP_INSERT, OP_FIND, OP_DELETE], size=n,
                         p=[0.5, 0.3, 0.2])
        keys = rng.integers(1, n // 3, size=n).astype(np.uint64)
        values = rng.integers(1, 1 << 32, size=n).astype(np.uint64)
        return ops, keys, values

    def test_engine_none_has_no_kernel_result(self):
        table, _ = twin_tables()
        ops, keys, values = self._workload()
        result = execute_mixed(table, ops, keys, values)
        assert result.kernel is None

    def test_engines_match_each_other_and_host_path(self):
        th, _ = twin_tables()
        tw, tc = twin_tables()
        ops, keys, values = self._workload()
        rh = execute_mixed(th, ops, keys, values)
        rw = execute_mixed(tw, ops, keys, values, engine="warp")
        rc = tc.execute_mixed(ops, keys, values, engine="cohort")
        for field in ("values", "found", "removed"):
            assert np.array_equal(getattr(rw, field), getattr(rc, field))
            assert np.array_equal(getattr(rh, field), getattr(rw, field))
        assert rw.kernel is not None and rw.kernel == rc.kernel
        assert rw.runs == rc.runs == rh.runs
        assert_tables_identical(tw, tc)
        assert th.to_dict() == tw.to_dict()

    def test_encoded_batch_caches_hashes(self):
        table, _ = twin_tables()
        keys = unique_keys(100, seed=28)
        batch = EncodedBatch(table, keys)
        assert batch.raw(0) is batch.raw(0)  # cached, not recomputed
        np.testing.assert_array_equal(
            table.table_hashes[2].bucket_from_raw(
                batch.raw(2), table.subtables[2].n_buckets),
            table.table_hashes[2].bucket(batch.codes,
                                         table.subtables[2].n_buckets))

    def test_sharded_mixed_engine_dispatch(self):
        def make_sharded():
            return ShardedDyCuckoo(num_shards=2, config=DyCuckooConfig(
                initial_buckets=32, bucket_capacity=8, auto_resize=False))
        sw, sc = make_sharded(), make_sharded()
        ops, keys, values = self._workload(n=2000, seed=29)
        rw = sw.execute_mixed(ops, keys, values, engine="warp")
        rc = sc.execute_mixed(ops, keys, values, engine="cohort")
        for field in ("values", "found", "removed"):
            assert np.array_equal(getattr(rw, field), getattr(rc, field))
        assert rw.kernel is not None and rw.kernel == rc.kernel
        for shard_w, shard_c in zip(sw.shards, sc.shards):
            assert_tables_identical(shard_w, shard_c)

    def test_parallel_shard_executor_matches_serial(self):
        """The process-pool executor's determinism contract: results,
        runs, merged kernel counters, per-shard storage and stats are
        bit-identical to serial execution, across successive batches."""
        config = DyCuckooConfig(initial_buckets=32, bucket_capacity=8,
                                auto_resize=False)
        serial = ShardedDyCuckoo(num_shards=4, config=config)
        with ShardedDyCuckoo(num_shards=4, config=config,
                             parallel_workers=2) as parallel:
            for seed in (29, 30):
                ops, keys, values = self._workload(n=1500, seed=seed)
                rs = serial.execute_mixed(ops, keys, values,
                                          engine="cohort")
                rp = parallel.execute_mixed(ops, keys, values,
                                            engine="cohort")
                for field in ("values", "found", "removed"):
                    assert np.array_equal(getattr(rs, field),
                                          getattr(rp, field))
                assert rs.runs == rp.runs
                assert rs.kernel == rp.kernel
            assert serial.to_dict() == parallel.to_dict()
            assert serial.stats.__dict__ == parallel.stats.__dict__
            for shard_s, shard_p in zip(serial.shards, parallel.shards):
                assert shard_s._victim_counter == shard_p._victim_counter
                for a, b in zip(shard_s.subtables, shard_p.subtables):
                    assert np.array_equal(a.keys, b.keys)
                    assert np.array_equal(a.values, b.values)
            parallel.validate()

    def test_parallel_shard_executor_serial_fallbacks(self):
        """Instrumented batches must take the serial path (shared
        handles) and still produce identical outcomes."""
        from repro.sanitizer import Sanitizer as San

        config = DyCuckooConfig(initial_buckets=32, bucket_capacity=8,
                                auto_resize=False)
        table = ShardedDyCuckoo(num_shards=2, config=config,
                                parallel_workers=2)
        table.set_sanitizer(San())
        ops, keys, values = self._workload(n=800, seed=31)
        _codes, selections = table._scatter(keys)
        assert not table._parallel_eligible(selections)
        reference = ShardedDyCuckoo(num_shards=2, config=config)
        rr = reference.execute_mixed(ops, keys, values, engine="cohort")
        rt = table.execute_mixed(ops, keys, values, engine="cohort")
        for field in ("values", "found", "removed"):
            assert np.array_equal(getattr(rr, field), getattr(rt, field))
        assert table.shards[0].sanitizer.ok
        table.set_sanitizer(None)
        assert table._parallel_eligible(selections)
        table.close()


# ---------------------------------------------------------------------------
# Property-based conformance
# ---------------------------------------------------------------------------

KEY = st.integers(min_value=1, max_value=200)
VALUE = st.integers(min_value=1, max_value=1 << 32)

# One step: a homogeneous batch, optionally followed by a resize.  Key
# range 1..200 against a 512-slot table keeps fill under ~40%, so the
# kernels (which never resize) always converge.
step_strategy = st.tuples(
    st.sampled_from(("insert", "find", "delete")),
    st.lists(KEY, min_size=1, max_size=60),
    st.lists(VALUE, min_size=60, max_size=60),
    st.sampled_from((None, None, None, "upsize", "downsize")),
)


class TestPropertyConformance:
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(steps=st.lists(step_strategy, min_size=1, max_size=8),
           faulty=st.booleans())
    def test_random_mixed_batches_conform(self, steps, faulty):
        tw, tc = twin_tables(buckets=16, capacity=8)
        if faulty:
            tw.set_fault_plan(default_chaos_plan(seed=9))
            tc.set_fault_plan(default_chaos_plan(seed=9))
        for kind, raw_keys, raw_values, resize in steps:
            keys = np.array(raw_keys, dtype=np.uint64)
            if kind == "insert":
                values = np.array(raw_values[:len(raw_keys)],
                                  dtype=np.uint64)
                rw = run_voter_insert_kernel(tw, keys, values)
                rc = run_voter_insert_kernel(tc, keys, values,
                                             engine="cohort")
            elif kind == "find":
                vw, fw, rw = run_find_kernel(tw, keys)
                vc, fc, rc = run_find_kernel(tc, keys, engine="cohort")
                assert np.array_equal(vw, vc) and np.array_equal(fw, fc)
            else:
                dw, rw = run_delete_kernel(tw, keys)
                dc, rc = run_delete_kernel(tc, keys, engine="cohort")
                assert np.array_equal(dw, dc)
            assert dataclasses.asdict(rw) == dataclasses.asdict(rc)
            assert_tables_identical(tw, tc)
            if resize in ("upsize", "downsize"):
                outcomes = []
                for t in (tw, tc):
                    try:
                        t.upsize() if resize == "upsize" else t.downsize()
                        outcomes.append(None)
                    except Exception as exc:  # noqa: BLE001 - compared below
                        outcomes.append(type(exc))
                assert outcomes[0] == outcomes[1]
            assert_tables_identical(tw, tc)


class TestProfilerStream:
    """The deep profiler is part of the conformance contract: both
    engines must emit identical snapshots — same round-by-round
    occupancy, same lock-contention heatmap, same probe and chain
    histograms — on fault-free workloads."""

    def _profiled_mixed(self, engine: str) -> dict:
        from repro.telemetry import Profiler

        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=64, bucket_capacity=8, auto_resize=False,
            seed=3))
        table.set_sanitizer(Sanitizer())
        prof = table.set_profiler(Profiler())
        keys = unique_keys(900, seed=31)
        ops = np.concatenate([
            np.full(900, OP_INSERT), np.full(450, OP_FIND),
            np.full(300, OP_DELETE)]).astype(np.int64)
        all_keys = np.concatenate([keys, keys[:450], keys[:300]])
        values = np.concatenate(
            [keys * np.uint64(3),
             np.zeros(750, dtype=np.uint64)])
        execute_mixed(table, ops, all_keys, values, engine=engine)
        san = table.sanitizer
        assert san.ok, [str(v) for v in san.violations]
        return prof.snapshot()

    def test_mixed_batch_snapshots_identical(self):
        warp = self._profiled_mixed("warp")
        cohort = self._profiled_mixed("cohort")
        assert warp == cohort
        assert [k["op"] for k in warp["kernels"]] == \
            ["insert", "find", "delete"]
        assert warp["probe_lengths"], "find/delete must observe probes"

    def test_high_fill_snapshots_identical_with_chains(self):
        """~97% fill: eviction chains and lock contention must conform
        not just in aggregate but in the full profiler stream."""
        from repro.telemetry import Profiler

        snapshots = {}
        for engine in ("warp", "cohort"):
            table = DyCuckooTable(DyCuckooConfig(
                initial_buckets=8, bucket_capacity=8, auto_resize=False,
                seed=3))
            table.set_sanitizer(Sanitizer())
            prof = table.set_profiler(Profiler())
            keys = unique_keys(248, seed=23)
            result = run_voter_insert_kernel(table, keys, keys,
                                             engine=engine)
            assert result.evictions > 0
            snapshots[engine] = prof.snapshot()

        assert snapshots["warp"] == snapshots["cohort"]
        snap = snapshots["warp"]
        insert, = snap["kernels"]
        assert insert["rounds"], "occupancy timeline must be populated"
        assert any(int(depth) > 0 for depth in snap["chain_depths"]), \
            "high fill must record eviction chains deeper than zero"
        assert sum(c["conflicts"] for c in snap["lock_heatmap"]) >= 0
        assert snap["lock_heatmap"], "heatmap must attribute lock grants"


# ---------------------------------------------------------------------------
# Mid-epoch conformance
# ---------------------------------------------------------------------------


class TestMidEpochConformance:
    """Bit-for-bit engine equality while a migration epoch is open.

    An open epoch makes bucket resolution per-key state-dependent
    (``bucket_for`` picks the pre- or post-resize view per pair), so
    the dual view is exactly the kind of divergence hazard this suite
    exists to catch: both engines must route every probe through the
    same epoch check.  The partial drain leaves migrated and
    unmigrated pairs coexisting in the target subtable.
    """

    def _twin_mid_epoch(self, kind="upsize"):
        tw, tc = twin_tables(buckets=16, capacity=8)  # 512 slots
        keys = unique_keys(320, seed=41)
        run_voter_insert_kernel(tw, keys, keys)
        run_voter_insert_kernel(tc, keys, keys, engine="cohort")
        if kind == "downsize":
            run_delete_kernel(tw, keys[120:])
            run_delete_kernel(tc, keys[120:], engine="cohort")
            keys = keys[:120]
        for t in (tw, tc):
            if kind == "upsize":
                t._resizer.open_upsize_epoch()
            else:
                t._resizer.open_downsize_epoch()
            t._resizer.drain_migration(max_pairs=3)  # mixed views
        assert any(st.migration is not None for st in tw.subtables)
        assert_tables_identical(tw, tc)
        return tw, tc, keys

    @pytest.mark.parametrize("kind", ["upsize", "downsize"])
    def test_find_mid_epoch_identical(self, kind):
        tw, tc, keys = self._twin_mid_epoch(kind)
        vw, fw, rw = run_find_kernel(tw, keys)
        vc, fc, rc = run_find_kernel(tc, keys, engine="cohort")
        assert fw.all() and fc.all()
        assert np.array_equal(vw, vc) and np.array_equal(fw, fc)
        assert rw == rc
        assert_tables_identical(tw, tc)

    @pytest.mark.parametrize("kind", ["upsize", "downsize"])
    def test_insert_mid_epoch_identical(self, kind):
        tw, tc, _keys = self._twin_mid_epoch(kind)
        fresh = unique_keys(60, seed=42, low=1 << 40)
        rw = run_voter_insert_kernel(tw, fresh, fresh)
        rc = run_voter_insert_kernel(tc, fresh, fresh, engine="cohort")
        assert rw == rc
        vw, fw, _ = run_find_kernel(tw, fresh)
        assert fw.all() and np.array_equal(vw, fresh)
        assert_tables_identical(tw, tc)

    @pytest.mark.parametrize("kind", ["upsize", "downsize"])
    def test_delete_mid_epoch_identical(self, kind):
        tw, tc, keys = self._twin_mid_epoch(kind)
        dw, rw = run_delete_kernel(tw, keys[::2])
        dc, rc = run_delete_kernel(tc, keys[::2], engine="cohort")
        assert dw.all() and dc.all()
        assert np.array_equal(dw, dc)
        assert rw == rc
        assert_tables_identical(tw, tc)

    @pytest.mark.parametrize("kind", ["upsize", "downsize"])
    def test_mixed_batch_mid_epoch_identical(self, kind):
        tw, tc, keys = self._twin_mid_epoch(kind)
        rng = np.random.default_rng(44)
        n = 600
        ops = rng.choice([OP_INSERT, OP_FIND, OP_DELETE], size=n,
                         p=[0.3, 0.5, 0.2])
        pool = np.concatenate(
            [keys, unique_keys(60, seed=43, low=1 << 40)])
        batch_keys = rng.choice(pool, size=n)
        values = rng.integers(1, 1 << 32, size=n).astype(np.uint64)
        rw = execute_mixed(tw, ops, batch_keys, values, engine="warp")
        rc = execute_mixed(tc, ops, batch_keys, values, engine="cohort")
        for field in ("values", "found", "removed"):
            assert np.array_equal(getattr(rw, field), getattr(rc, field))
        assert rw.kernel is not None and rw.kernel == rc.kernel
        assert_tables_identical(tw, tc)

    def test_finalize_after_kernels_settles_identically(self):
        tw, tc, keys = self._twin_mid_epoch("upsize")
        run_find_kernel(tw, keys)
        run_find_kernel(tc, keys, engine="cohort")
        tw.finalize_resizes()
        tc.finalize_resizes()
        assert all(st.migration is None for st in tw.subtables)
        assert_tables_identical(tw, tc)
        tw.validate()
        tc.validate()
