"""Integration tests asserting the paper's qualitative results.

Each test runs a miniature version of one of the paper's experiments and
asserts the *shape* of the outcome — who wins, what degrades, what stays
bounded.  These are the claims EXPERIMENTS.md records at full benchmark
scale.
"""

import numpy as np
import pytest

from repro.baselines import (CudppHashTable, DyCuckooAdapter, MegaKVTable,
                             SlabHashTable)
from repro.baselines.slab import slab_buckets_for_fill
from repro.bench import run_dynamic, run_static
from repro.core.config import DyCuckooConfig
from repro.gpusim.metrics import CostModel
from repro.workloads import COM, DynamicWorkload

from .conftest import unique_keys

#: The COM surrogate below runs at 1/500 of the paper's scale; fixed
#: device overheads are scaled alike (see CostModel.overhead_scale).
COST_MODEL = CostModel(overhead_scale=0.002)


def dycuckoo(**kw):
    defaults = dict(initial_buckets=16, bucket_capacity=16)
    defaults.update(kw)
    return DyCuckooAdapter(DyCuckooConfig(**defaults))


@pytest.fixture(scope="module")
def com_stream():
    return COM.generate(scale=0.002, seed=11)  # 20k pairs, heavy skew


class TestDynamicShapes:
    def test_dycuckoo_fill_stays_bounded(self, com_stream):
        """Figure 12: DyCuckoo's filled factor stays inside [alpha, beta]."""
        keys, values = com_stream
        table = dycuckoo(initial_buckets=8)
        workload = DynamicWorkload(keys, values, batch_size=2000, seed=1)
        result = run_dynamic(table, workload)
        config = table.config
        series = result.fill_series
        # Skip warm-up batches where the table is still tiny.
        steady = series[2:]
        assert all(f <= config.beta + 1e-9 for f in steady)
        at_min = all(st.n_buckets <= config.min_buckets
                     for st in table.table.subtables)
        assert min(steady) >= config.alpha * 0.8 or at_min

    def test_slab_fill_decays(self, com_stream):
        """Figure 12: SlabHash's symbolic deletion decays the fill factor."""
        keys, values = com_stream
        table = SlabHashTable(n_buckets=256)
        workload = DynamicWorkload(keys, values, batch_size=2000, seed=1)
        result = run_dynamic(table, workload)
        assert result.fill_series[-1] < 0.25  # "<20% for COM" in the paper

    def test_megakv_fill_oscillates(self, com_stream):
        """Figure 12: MegaKV's double/half strategy jumps the fill factor."""
        keys, values = com_stream
        table = MegaKVTable(initial_buckets=8)
        workload = DynamicWorkload(keys, values, batch_size=2000, seed=1)
        result = run_dynamic(table, workload)
        series = np.asarray(result.fill_series)
        jumps = np.abs(np.diff(series))
        assert jumps.max() > 0.2  # a resize step cuts/doubles the fill

    def test_dycuckoo_beats_megakv_dynamic(self, com_stream):
        """Figure 11: DyCuckoo has the best overall dynamic throughput."""
        keys, values = com_stream
        results = {}
        for table in (dycuckoo(initial_buckets=8),
                      MegaKVTable(initial_buckets=8),
                      SlabHashTable(n_buckets=256)):
            workload = DynamicWorkload(keys, values, batch_size=2000, seed=1)
            results[table.NAME] = run_dynamic(table, workload,
                                              cost_model=COST_MODEL).mops
        assert results["DyCuckoo"] > results["MegaKV"]
        assert results["DyCuckoo"] > results["SlabHash"]

    def test_dycuckoo_uses_less_memory_than_megakv(self, com_stream):
        """The headline memory claim: DyCuckoo saves memory vs MegaKV."""
        keys, values = com_stream
        peaks = {}
        for table in (dycuckoo(initial_buckets=8),
                      MegaKVTable(initial_buckets=8)):
            workload = DynamicWorkload(keys, values, batch_size=2000, seed=1)
            peaks[table.NAME] = run_dynamic(table, workload).peak_memory_bytes
        assert peaks["DyCuckoo"] <= peaks["MegaKV"]

    def test_more_deletions_slow_dycuckoo_but_help_slab(self, com_stream):
        """Figure 11: raising r degrades DyCuckoo, improves Slab.

        (The paper additionally reports the DyCuckoo/MegaKV margin
        growing with r; under our workload protocol the margin stays
        roughly flat — recorded as a deviation in EXPERIMENTS.md.)
        """
        keys, values = com_stream

        def mops_at(table_factory, r):
            workload = DynamicWorkload(keys, values, batch_size=2000,
                                       ratio_r=r, seed=1)
            return run_dynamic(table_factory(), workload,
                               cost_model=COST_MODEL).mops

        slab_low = mops_at(lambda: SlabHashTable(n_buckets=256), 0.1)
        slab_high = mops_at(lambda: SlabHashTable(n_buckets=256), 0.5)
        dy_low = mops_at(lambda: dycuckoo(initial_buckets=8), 0.1)
        dy_high = mops_at(lambda: dycuckoo(initial_buckets=8), 0.5)
        mega_low = mops_at(lambda: MegaKVTable(initial_buckets=8), 0.1)
        mega_high = mops_at(lambda: MegaKVTable(initial_buckets=8), 0.5)
        assert slab_high > slab_low * 0.95  # Slab improves (or holds)
        assert dy_high < dy_low * 1.05      # DyCuckoo degrades (or holds)
        assert dy_low > mega_low            # DyCuckoo ahead at every r
        assert dy_high >= mega_high * 0.95


class TestStaticShapes:
    @pytest.fixture(scope="class")
    def static_results(self):
        # 52429 keys into 65536 slots = the paper's default theta (80%+),
        # with every bucketized table allocated the same total memory.
        target = 0.80
        total_slots = 65_536
        keys = unique_keys(int(total_slots * target), seed=21)
        values = keys * np.uint64(3)
        results = {}
        # Each design uses its native geometry at equal total memory:
        # DyCuckoo 4x512x32 slots, MegaKV 2x4096x8 slots (= 65536 each).
        tables = {
            "DyCuckoo": DyCuckooAdapter(DyCuckooConfig(
                num_tables=4, bucket_capacity=32, initial_buckets=512,
                auto_resize=False)),
            "MegaKV": MegaKVTable(initial_buckets=4096, bucket_capacity=8,
                                  auto_resize=False),
            "CUDPP": CudppHashTable(len(keys), target_fill=target),
            "SlabHash": SlabHashTable(
                n_buckets=slab_buckets_for_fill(len(keys), target)),
        }
        for name, table in tables.items():
            results[name] = run_static(table, keys, values, num_finds=10_000)
        return results

    def test_all_approaches_work(self, static_results):
        for name, result in static_results.items():
            assert result.insert_mops > 0, name
            assert result.find_mops > 0, name

    def test_dycuckoo_best_insert(self, static_results):
        """Figure 9: DyCuckoo demonstrates the best insert throughput."""
        dy = static_results["DyCuckoo"].insert_mops
        for other in ("MegaKV", "CUDPP", "SlabHash"):
            assert dy > static_results[other].insert_mops, other

    def test_megakv_best_find_dycuckoo_close(self, static_results):
        """Figure 9: MegaKV wins FIND; DyCuckoo is a close second."""
        mega = static_results["MegaKV"].find_mops
        dy = static_results["DyCuckoo"].find_mops
        assert mega > dy
        assert dy > 0.7 * mega  # "slightly inferior", not a blowout

    def test_cuckoo_schemes_beat_chaining_on_find(self, static_results):
        slab = static_results["SlabHash"].find_mops
        assert static_results["DyCuckoo"].find_mops > slab
        assert static_results["MegaKV"].find_mops > slab
