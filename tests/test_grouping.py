"""Unit and property tests for the group-by helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (first_occurrence_mask, group_counts,
                                 last_occurrence_mask, rank_within_group)


class TestRankWithinGroup:
    def test_simple(self):
        ranks, unique, inverse = rank_within_group(np.array([5, 3, 5, 5, 3]))
        assert ranks.tolist() == [0, 0, 1, 2, 1]
        assert unique.tolist() == [3, 5]
        assert np.array_equal(unique[inverse], np.array([5, 3, 5, 5, 3]))

    def test_all_same_group(self):
        ranks, unique, _ = rank_within_group(np.zeros(6, dtype=np.int64))
        assert ranks.tolist() == [0, 1, 2, 3, 4, 5]
        assert unique.tolist() == [0]

    def test_all_distinct(self):
        ranks, _, _ = rank_within_group(np.arange(10))
        assert ranks.tolist() == [0] * 10

    def test_empty(self):
        ranks, unique, inverse = rank_within_group(np.array([], dtype=np.int64))
        assert len(ranks) == 0
        assert len(unique) == 0
        assert len(inverse) == 0

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    @settings(max_examples=100)
    def test_ranks_are_stable_positions(self, group_list):
        groups = np.asarray(group_list, dtype=np.int64)
        ranks, _, _ = rank_within_group(groups)
        # Brute-force reference: rank = occurrences of this id before i.
        for i, g in enumerate(group_list):
            assert ranks[i] == group_list[:i].count(g)


class TestGroupCounts:
    def test_counts(self):
        counts = group_counts(np.array([0, 2, 2, 4]), num_groups=5)
        assert counts.tolist() == [1, 0, 2, 0, 1]

    def test_empty(self):
        assert group_counts(np.array([], dtype=np.int64), 3).tolist() == [0, 0, 0]


class TestOccurrenceMasks:
    def test_first_occurrence(self):
        mask = first_occurrence_mask(np.array([7, 7, 3, 7, 3]))
        assert mask.tolist() == [True, False, True, False, False]

    def test_last_occurrence(self):
        mask = last_occurrence_mask(np.array([7, 7, 3, 7, 3]))
        assert mask.tolist() == [False, False, False, True, True]

    def test_all_unique(self):
        keys = np.array([1, 2, 3])
        assert first_occurrence_mask(keys).all()
        assert last_occurrence_mask(keys).all()

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=100))
    @settings(max_examples=100)
    def test_masks_select_each_key_once(self, key_list):
        keys = np.asarray(key_list, dtype=np.uint64)
        for mask_fn in (first_occurrence_mask, last_occurrence_mask):
            mask = mask_fn(keys)
            selected = keys[mask]
            assert len(selected) == len(np.unique(keys))
            assert set(selected.tolist()) == set(key_list)
