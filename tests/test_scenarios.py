"""Scenario soak subsystem: registry, runner, scorecards, eviction.

The full matrix runs at ``scale=0.02`` with the dict oracle attached,
so every registered scenario is tier-1-verified through exactly the
code path the soak CLI uses.  Full-scale runs are opt-in via
``pytest -m soak``.
"""

import json

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.memory_budget import MemoryBudget
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError
from repro.scenarios import (REGISTRY, ScenarioSpec, SloSpec,
                             get_scenario, run_scenario,
                             scenario_names, validate_scorecard,
                             write_scorecard)
from repro.scenarios.spec import (MIN_BATCH, MIN_OPERATIONS,
                                  MIN_RECORDS)

SMALL = 0.02
RICH = 0.05  # enough ops that chaos/storm/budget activity is visible


@pytest.fixture(scope="module")
def small_cards():
    """Every registered scenario once, at tier-1 scale, with oracle."""
    return {name: run_scenario(spec, scale=SMALL, differential=True)
            for name, spec in REGISTRY.items()}


class TestRegistry:
    def test_ten_named_scenarios(self):
        assert len(REGISTRY) == 10
        assert scenario_names() == [s.name for s in REGISTRY.values()]

    def test_specs_validate(self):
        for spec in REGISTRY.values():
            spec.validate()

    def test_every_axis_is_covered(self):
        axes = {axis for spec in REGISTRY.values()
                for axis, on in spec.composition().items() if on}
        assert {"storm", "churn", "faults", "sanitizer",
                "memory_budget", "sharded"} <= axes

    def test_kitchen_sink_composes_everything(self):
        composition = get_scenario("kitchen_sink").composition()
        missing = [axis for axis, on in composition.items()
                   if not on and axis != "sharded"]
        assert not missing, f"kitchen_sink misses axes: {missing}"

    def test_unknown_scenario_raises(self):
        with pytest.raises(InvalidConfigError, match="unknown scenario"):
            get_scenario("nope")

    def test_scaled_is_proportional_with_floors(self):
        spec = get_scenario("kitchen_sink")
        tiny = spec.scaled(0.001)
        assert tiny.num_records == max(MIN_RECORDS,
                                       int(spec.num_records * 0.001))
        assert tiny.num_operations >= MIN_OPERATIONS
        assert tiny.batch_size >= MIN_BATCH
        assert tiny.storm is not None and tiny.storm.ops >= 32
        assert tiny.memory_budget_bytes < spec.memory_budget_bytes
        half = spec.scaled(0.5)
        assert half.num_operations == spec.num_operations // 2
        assert spec.scaled(1.0) is spec
        with pytest.raises(InvalidConfigError):
            spec.scaled(0)

    def test_invalid_specs_rejected(self):
        with pytest.raises(InvalidConfigError, match="unknown YCSB mix"):
            ScenarioSpec(name="x", description="x", mix="Z").validate()
        with pytest.raises(InvalidConfigError, match="fault site"):
            ScenarioSpec(name="x", description="x",
                         fault_rates={"bogus.site": 0.5}).validate()


class TestMatrix:
    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_passes_at_small_scale(self, name, small_cards,
                                            tmp_path):
        card = small_cards[name]
        assert card["verdict"] == "pass", card["problems"]
        assert validate_scorecard(card) == []
        assert card["invariants"]["ok"]
        assert card["invariants"]["checks"] > 0
        assert card["slo"]["attained"]
        path = write_scorecard(card, tmp_path)
        assert path.name == f"SCORECARD_{name}.json"
        assert json.loads(path.read_text()) == card

    def test_runs_are_deterministic(self):
        spec = get_scenario("ycsb_a_update_heavy")
        first = run_scenario(spec, scale=SMALL)
        second = run_scenario(spec, scale=SMALL)
        assert first == second

    def test_sharded_scenario_echoes_shards(self, small_cards):
        card = small_cards["ycsb_c_sharded_scatter"]
        assert card["workload"]["shards"] == 4


class TestComposedActivity:
    """The composition axes must actually *do* something, not just be
    configured — a chaos soak with zero fires grades nothing."""

    @pytest.fixture(scope="class")
    def kitchen(self):
        return run_scenario(get_scenario("kitchen_sink"), scale=RICH,
                            differential=True)

    def test_kitchen_sink_passes_fully_composed(self, kitchen):
        assert kitchen["verdict"] == "pass", kitchen["problems"]
        assert kitchen["slo"]["attained"]
        assert kitchen["invariants"]["ok"]
        assert kitchen["sanitizer"]["enabled"]
        assert kitchen["sanitizer"]["ok"]

    def test_kitchen_sink_faults_fired(self, kitchen):
        assert kitchen["faults"]["enabled"]
        assert kitchen["faults"]["fired"] > 0
        assert kitchen["resizes"]["aborts"] > 0

    def test_kitchen_sink_stash_degradation(self, kitchen):
        assert kitchen["stash"]["high_water"] > 0
        assert kitchen["stash"]["drained"] > 0

    def test_kitchen_sink_storm_and_churn_batches(self, kitchen):
        assert kitchen["ops"]["storm_batches"] > 0
        assert kitchen["ops"]["churn_batches"] > 0
        assert kitchen["resizes"]["upsizes"] > 0
        assert kitchen["resizes"]["downsizes"] > 0

    def test_kitchen_sink_memory_pressure(self, kitchen):
        assert kitchen["memory"]["budget_bytes"] is not None
        assert kitchen["memory"]["evictions"] > 0
        assert kitchen["memory"]["budget_ok"]

    def test_chaos_soak_fires(self):
        card = run_scenario(get_scenario("chaos_soak"), scale=RICH,
                            differential=True)
        assert card["verdict"] == "pass", card["problems"]
        assert card["faults"]["fired"] > 0

    def test_memory_pressure_evicts(self):
        card = run_scenario(get_scenario("memory_pressure"),
                            scale=RICH, differential=True)
        assert card["verdict"] == "pass", card["problems"]
        assert card["memory"]["evictions"] > 0
        assert card["memory"]["peak_bytes"] > 0


class TestFailurePaths:
    def test_impossible_slo_fails_with_recorder_digest(self):
        spec = get_scenario("ycsb_b_read_mostly")
        strict = ScenarioSpec(**{**spec.__dict__, "name": "strict",
                                 "slo": SloSpec(p50_ns=0.001,
                                                p99_ns=0.001,
                                                worst_ns=0.001)})
        card = run_scenario(strict, scale=SMALL)
        assert card["verdict"] == "fail"
        assert not card["slo"]["attained"]
        assert card["slo"]["violations"]
        assert card["problems"]
        assert "flight_recorder" in card
        assert validate_scorecard(card) == []

    def test_unsatisfiable_budget_reported(self):
        # scale=1.0 so ``scaled()`` cannot floor the budget back up.
        spec = get_scenario("ycsb_a_update_heavy")
        squeezed = ScenarioSpec(**{**spec.__dict__, "name": "squeezed",
                                   "num_records": 1_000,
                                   "num_operations": 4_000,
                                   "batch_size": 200,
                                   "memory_budget_bytes": 1})
        card = run_scenario(squeezed)
        assert card["verdict"] == "fail"
        assert not card["memory"]["budget_ok"]
        assert validate_scorecard(card) == []


class TestScorecardValidation:
    def good(self):
        return run_scenario(get_scenario("ycsb_b_read_mostly"),
                            scale=SMALL)

    def test_good_card_is_clean(self):
        assert validate_scorecard(self.good()) == []

    def test_missing_section_detected(self):
        card = self.good()
        del card["stash"]
        assert any("stash" in p for p in validate_scorecard(card))

    def test_missing_key_detected(self):
        card = self.good()
        del card["latency"]["p99"]
        assert any("latency.p99" in p for p in validate_scorecard(card))

    def test_type_mismatch_detected(self):
        card = self.good()
        card["resizes"]["upsizes"] = "three"
        assert any("resizes.upsizes" in p
                   for p in validate_scorecard(card))

    def test_fail_without_problems_detected(self):
        card = self.good()
        card["verdict"] = "fail"
        assert any("problems is empty" in p
                   for p in validate_scorecard(card))

    def test_non_dict_rejected(self):
        assert validate_scorecard([]) != []


class TestMemoryBudgetPolicy:
    def filled_table(self, n=4000):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8,
                                             min_buckets=8))
        keys = np.arange(1, n + 1, dtype=np.uint64)
        table.insert(keys, keys * np.uint64(3))
        return table

    def test_enforce_meets_budget(self):
        table = self.filled_table()
        over = int(table.memory_footprint().total_bytes)
        policy = MemoryBudget(over // 2, seed=7)
        report = policy.enforce(table)
        assert report.within_budget
        assert report.evicted > 0
        assert report.bytes_after <= over // 2
        assert int(table.memory_footprint().total_bytes) <= over // 2
        # Evicted keys really are gone (the table degrades to a cache).
        _, found = table.find(report.evicted_keys)
        assert not found.any()

    def test_noop_when_under_budget(self):
        table = self.filled_table(100)
        policy = MemoryBudget(10 ** 9)
        report = policy.enforce(table)
        assert report.evicted == 0 and report.rounds == 0
        assert report.within_budget

    def test_victims_deterministic_by_seed(self):
        reports = []
        for _ in range(2):
            table = self.filled_table()
            policy = MemoryBudget(
                int(table.memory_footprint().total_bytes) // 2, seed=11)
            reports.append(policy.enforce(table))
        assert np.array_equal(reports[0].evicted_keys,
                              reports[1].evicted_keys)

    def test_unsatisfiable_budget_counts_violation(self):
        table = self.filled_table(200)
        policy = MemoryBudget(1, max_rounds=3)
        report = policy.enforce(table)
        assert not report.within_budget
        assert policy.violations == 1
        assert policy.summary()["violations"] == 1

    def test_constructor_validation(self):
        with pytest.raises(InvalidConfigError):
            MemoryBudget(0)
        with pytest.raises(InvalidConfigError):
            MemoryBudget(100, evict_fraction=0.0)
        with pytest.raises(InvalidConfigError):
            MemoryBudget(100, max_rounds=0)


@pytest.mark.soak
class TestFullScaleSoak:
    """Opt-in (``pytest -m soak``): the matrix at full op counts."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_full_scale_scenario_passes(self, name):
        card = run_scenario(get_scenario(name), scale=1.0)
        assert card["verdict"] == "pass", card["problems"]
        assert validate_scorecard(card) == []
