"""Tests for the JSON benchmark-artifact writer."""

import json

import numpy as np
import pytest

from repro.bench.artifacts import ENV_VAR, maybe_dump
from repro.bench.runner import StaticRunResult


class TestMaybeDump:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert maybe_dump("x", {"a": 1}) is None

    def test_writes_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        out = maybe_dump("myresult", {"a": 1, "b": [1.5, 2.5]})
        assert out == tmp_path / "myresult.json"
        assert json.loads(out.read_text()) == {"a": 1, "b": [1.5, 2.5]}

    def test_numpy_and_tuple_keys(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        results = {
            ("COM", 0.2, "DyCuckoo"): np.float64(123.4),
            "series": np.array([1, 2, 3], dtype=np.uint64),
        }
        out = maybe_dump("mixed", results)
        data = json.loads(out.read_text())
        assert data["COM/0.2/DyCuckoo"] == pytest.approx(123.4)
        assert data["series"] == [1, 2, 3]

    def test_dataclass_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        result = StaticRunResult(table_name="DyCuckoo", insert_ops=10,
                                 insert_seconds=0.5, find_ops=5,
                                 find_seconds=0.1, fill_factor=0.8)
        out = maybe_dump("static", {"run": result})
        data = json.loads(out.read_text())
        assert data["run"]["table_name"] == "DyCuckoo"
        assert data["run"]["insert_ops"] == 10

    def test_nested_objects(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))

        class Holder:
            def __init__(self):
                self.value = np.int64(7)
                self._private = "hidden"

        out = maybe_dump("obj", [Holder()])
        data = json.loads(out.read_text())
        assert data == [{"value": 7}]
