"""Regression tests for three historical accounting/upsert bugs.

Each test failed before its fix and pins the exact failure mode:

1. the warp insert kernel balloted "existing key" and "EMPTY slot" as
   one predicate, so a delete hole below a stored key's slot captured
   the upsert and duplicated the key (and the kernel never probed the
   pair's other subtable at all — the cross-subtable variant of the
   same duplication);
2. :meth:`Subtable.erase` decremented ``size`` once per matching input
   row, so duplicate ``(bucket, code)`` rows drove the counter negative;
3. a rolled-back downsize restored storage but only the ``downsizes``
   counter, leaving ``rehashed_entries``/``residuals``/``bucket_reads``/
   ``bucket_writes`` inflated by undone work.
"""

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.subtable import EMPTY, Subtable
from repro.core.table import DyCuckooTable, decode_keys
from repro.errors import ResizeError
from repro.faults import FaultPlan
from repro.kernels import run_spin_insert_kernel, run_voter_insert_kernel

from .conftest import unique_keys


def fresh_table(buckets=16, capacity=8, **kw):
    defaults = dict(initial_buckets=buckets, bucket_capacity=capacity,
                    auto_resize=False)
    defaults.update(kw)
    return DyCuckooTable(DyCuckooConfig(**defaults))


class TestKernelUpsertDuplication:
    """Bug 1: warp upsert wrote a second copy of an existing key."""

    def _bucket_with_two_entries(self, table):
        """Locate (subtable idx, bucket, lower slot, higher slot)."""
        for t_idx, st in enumerate(table.subtables):
            occupancy = (st.keys != EMPTY).sum(axis=1)
            for bucket in np.flatnonzero(occupancy >= 2):
                slots = np.flatnonzero(st.keys[bucket] != EMPTY)
                return t_idx, int(bucket), int(slots[0]), int(slots[1])
        raise AssertionError("workload left no bucket with two entries")

    @pytest.mark.parametrize("kernel", [run_voter_insert_kernel,
                                        run_spin_insert_kernel])
    def test_hole_below_stored_key_updates_in_place(self, kernel):
        """A delete hole below the stored slot must not win the upsert."""
        table = fresh_table()
        keys = unique_keys(300, seed=40)
        kernel(table, keys, keys)
        t_idx, bucket, low_slot, high_slot = \
            self._bucket_with_two_entries(table)
        st = table.subtables[t_idx]
        low_key = decode_keys(st.keys[bucket, low_slot:low_slot + 1])
        high_key = decode_keys(st.keys[bucket, high_slot:high_slot + 1])

        assert bool(table.delete(low_key)[0])  # hole below high_key
        # Pin the router so the kernel re-inspects exactly this bucket.
        table._router.choose = (
            lambda codes, first, second, sizes, loads:
            np.full(len(codes), t_idx, dtype=np.int64))
        kernel(table, high_key, high_key + np.uint64(7))

        table.validate()  # used to raise: duplicate key across slots
        assert len(table) == 299
        values, found = table.find(high_key)
        assert bool(found[0])
        assert int(values[0]) == int(high_key[0]) + 7

    @pytest.mark.parametrize("kernel", [run_voter_insert_kernel,
                                        run_spin_insert_kernel])
    def test_key_resident_in_alternate_subtable(self, kernel):
        """Upsert must probe the pair's other subtable, not duplicate."""
        table = fresh_table()
        keys = unique_keys(50, seed=41)
        # Place every key in the *first* subtable of its pair...
        table._router.choose = (
            lambda codes, first, second, sizes, loads: first)
        table.insert(keys, keys)
        # ...then drive the kernel at the *second*.
        table._router.choose = (
            lambda codes, first, second, sizes, loads: second)
        kernel(table, keys, keys + np.uint64(3))

        table.validate()  # used to raise: duplicate key across subtables
        assert len(table) == 50
        values, found = table.find(keys)
        assert bool(found.all())
        assert np.array_equal(values, keys + np.uint64(3))


class TestEraseDuplicateRows:
    """Bug 2: duplicate (bucket, code) rows double-decremented size."""

    def test_duplicate_rows_count_slot_once(self):
        st = Subtable(n_buckets=8, bucket_capacity=4)
        st.keys[3, 0] = np.uint64(42)
        st.size = 1
        erased = st.erase(np.array([3, 3], dtype=np.int64),
                          np.array([42, 42], dtype=np.uint64))
        assert erased.tolist() == [True, True]
        assert st.size == 0  # used to go to -1
        st.validate()

    def test_mixed_duplicate_and_fresh_rows(self):
        st = Subtable(n_buckets=8, bucket_capacity=4)
        st.keys[1, 0] = np.uint64(10)
        st.keys[1, 1] = np.uint64(11)
        st.keys[5, 2] = np.uint64(12)
        st.size = 3
        erased = st.erase(
            np.array([1, 1, 5, 1, 6], dtype=np.int64),
            np.array([10, 10, 12, 11, 10], dtype=np.uint64))
        assert erased.tolist() == [True, True, True, True, False]
        assert st.size == 0
        st.validate()


class TestDownsizeRollbackAccounting:
    """Bug 3: rollback restored storage but not the event counters."""

    def test_spill_abort_delta_is_exactly_one_abort(self):
        config = DyCuckooConfig(initial_buckets=8, bucket_capacity=2,
                                min_buckets=4, auto_resize=False)
        table = DyCuckooTable(config)
        keys = unique_keys(40, seed=42)
        table.insert(keys, keys)
        plan = FaultPlan(seed=0, rates={"resize.abort.spill": 1.0})
        table.set_fault_plan(plan)
        before = table.stats.snapshot()
        aborted = False
        for _ in range(4):
            try:
                table._resizer.downsize()
            except ResizeError:
                aborted = True
                break
            before = table.stats.snapshot()
        assert aborted, "fault plan never reached the spill stage"
        delta = {name: count for name, count
                 in table.stats.delta(before).items() if count}
        # Used to leave bucket_reads/bucket_writes/rehashed_entries/
        # residuals inflated by the rolled-back rehash.
        assert delta == {"resize_aborts": 1}
        table.validate()


class TestUnwindReleasesLocks:
    """Release-on-exception: a kernel abort must not wedge the lock
    table or leak bucket locks (audited by the SIMT sanitizer)."""

    def _contended_batch(self, table, lanes=128):
        """Four warps, every lane the same key: one lock, all contend."""
        from repro.core.table import encode_keys
        keys = np.full(lanes, 12345, dtype=np.uint64)
        codes = encode_keys(keys)
        first, second = table.pair_hash.tables_for(codes)
        targets = table._router.choose(codes, first, second,
                                       table.subtable_sizes(),
                                       table.subtable_loads())
        return codes, keys, targets

    def test_warp_engine_unwinds_on_stall_exhaustion(self):
        from repro.errors import CapacityError
        from repro.faults import NO_FAULTS
        from repro.kernels.insert import _run_insert_warps
        from repro.sanitizer import Sanitizer

        table = fresh_table()
        san = table.set_sanitizer(Sanitizer())
        codes, values, targets = self._contended_batch(table)
        with pytest.raises(CapacityError):
            _run_insert_warps(table, codes, values, targets, voter=True,
                              faults=NO_FAULTS, max_rounds_per_op=1)
        assert san.ok, [str(v) for v in san.violations]
        assert san.stats["unwind_releases"] >= 1
        # The lock table is usable again: a fresh batch completes.
        fresh = unique_keys(64, seed=77)
        run_voter_insert_kernel(table, fresh, fresh)
        assert san.ok, [str(v) for v in san.violations]

    def test_cohort_engine_unwinds_on_stall_exhaustion(self):
        from repro.errors import CapacityError
        from repro.gpusim.cohort import cohort_insert
        from repro.sanitizer import Sanitizer

        table = fresh_table()
        san = table.set_sanitizer(Sanitizer())
        codes, values, targets = self._contended_batch(table)
        with pytest.raises(CapacityError):
            cohort_insert(table, codes, values, targets, voter=True,
                          max_rounds_per_op=1)
        assert san.ok, [str(v) for v in san.violations]
        assert san.stats["unwind_releases"] >= 1
        run_voter_insert_kernel(table, unique_keys(64, seed=78),
                                unique_keys(64, seed=78),
                                engine="cohort")
        assert san.ok, [str(v) for v in san.violations]

    def test_resize_abort_releases_subtable_lock(self):
        from repro.sanitizer import Sanitizer

        table = fresh_table(buckets=16, capacity=8, min_buckets=8,
                            auto_resize=True)
        san = table.set_sanitizer(Sanitizer())
        keys = unique_keys(96, seed=79)
        table.insert(keys, keys)
        table.delete(keys[:80])  # make the downsize viable
        for stage in ("rehash", "spill"):
            table.set_fault_plan(FaultPlan(
                seed=0, rates={f"resize.abort.{stage}": 1.0}))
            with pytest.raises(ResizeError):
                table._resizer.downsize()
            table.set_fault_plan(None)
            report = san.report()
            assert report["subtable_locks_held"] == 0, stage
            assert san.ok, [str(v) for v in san.violations]
        table.validate()
