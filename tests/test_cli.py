"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (["info"], ["demo"], ["datasets"],
                     ["dynamic", "--dataset", "COM"], ["profile"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 1080" in out
        assert "Table 3" in out

    def test_demo(self, capsys):
        assert main(["demo", "--keys", "3000"]) == 0
        out = capsys.readouterr().out
        assert "inserted 3,000 keys" in out
        assert "validate(): ok" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.0002"]) == 0
        out = capsys.readouterr().out
        for name in ("TW", "RE", "LINE", "COM", "RAND"):
            assert name in out

    def test_dynamic(self, capsys):
        assert main(["dynamic", "--dataset", "COM", "--scale", "0.0005",
                     "--batch", "500"]) == 0
        out = capsys.readouterr().out
        assert "DyCuckoo" in out
        assert "MegaKV" in out
        assert "filled factor per batch" in out

    def test_profile(self, capsys):
        assert main(["profile", "--keys", "5000"]) == 0
        out = capsys.readouterr().out
        assert "insert:" in out
        assert "find:" in out
        assert "delete:" in out

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            main(["dynamic", "--dataset", "NOPE", "--scale", "0.0005"])
