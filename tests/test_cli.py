"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (["info"], ["demo"], ["datasets"],
                     ["dynamic", "--dataset", "COM"], ["profile"],
                     ["trace"], ["trace", "RAND", "--smoke"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_seed_and_json_flags_everywhere(self):
        parser = build_parser()
        for command in ("demo", "dynamic", "profile", "trace"):
            args = parser.parse_args([command, "--seed", "42", "--json"])
            assert args.seed == 42
            assert args.json is True

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "COM"
        assert args.out is None
        assert args.smoke is False


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 1080" in out
        assert "Table 3" in out

    def test_demo(self, capsys):
        assert main(["demo", "--keys", "3000"]) == 0
        out = capsys.readouterr().out
        assert "inserted 3,000 keys" in out
        assert "validate(): ok" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.0002"]) == 0
        out = capsys.readouterr().out
        for name in ("TW", "RE", "LINE", "COM", "RAND"):
            assert name in out

    def test_dynamic(self, capsys):
        assert main(["dynamic", "--dataset", "COM", "--scale", "0.0005",
                     "--batch", "500"]) == 0
        out = capsys.readouterr().out
        assert "DyCuckoo" in out
        assert "MegaKV" in out
        assert "filled factor per batch" in out

    def test_profile(self, capsys):
        assert main(["profile", "--keys", "5000"]) == 0
        out = capsys.readouterr().out
        assert "insert:" in out
        assert "find:" in out
        assert "delete:" in out

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            main(["dynamic", "--dataset", "NOPE", "--scale", "0.0005"])


class TestJsonOutput:
    def _run_json(self, capsys, argv):
        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_demo_json(self, capsys):
        payload = self._run_json(
            capsys, ["demo", "--keys", "3000", "--seed", "7", "--json"])
        assert payload["command"] == "demo"
        assert payload["seed"] == 7
        assert payload["inserted"] == 3000
        assert 0.0 <= payload["fill_after_insert"] <= 1.0
        assert payload["stats"]["inserts"] == 3000

    def test_demo_json_is_seed_reproducible(self, capsys):
        a = self._run_json(capsys, ["demo", "--keys", "3000",
                                    "--seed", "7", "--json"])
        b = self._run_json(capsys, ["demo", "--keys", "3000",
                                    "--seed", "7", "--json"])
        assert a == b

    def test_dynamic_json(self, capsys):
        payload = self._run_json(
            capsys, ["dynamic", "--dataset", "COM", "--scale", "0.0005",
                     "--batch", "500", "--json"])
        assert payload["command"] == "dynamic"
        assert set(payload["approaches"]) == {"DyCuckoo", "MegaKV",
                                              "SlabHash"}
        for result in payload["approaches"].values():
            assert result["mops"] > 0
            assert len(result["fill_series"]) > 0

    def test_profile_json(self, capsys):
        payload = self._run_json(
            capsys, ["profile", "--keys", "5000", "--json"])
        assert payload["command"] == "profile"
        names = [p["name"] for p in payload["profiles"]]
        assert names == ["insert", "find", "delete"]
        for profile in payload["profiles"]:
            assert profile["num_ops"] > 0
            assert profile["simulated_seconds"] > 0


class TestTraceCommand:
    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "COM", "--scale", "0.0005", "--batch", "500",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "events" in text
        parsed = json.loads(out.read_text())
        assert parsed["traceEvents"]
        assert parsed["otherData"]["workload"] == "COM"

    def test_trace_json_summary_with_side_outputs(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        metrics = tmp_path / "t.prom"
        assert main(["trace", "COM", "--scale", "0.0005", "--batch", "500",
                     "--out", str(out), "--jsonl", str(jsonl),
                     "--metrics-out", str(metrics), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "trace"
        assert payload["events"] > 0
        assert payload["fill_samples"] == payload["batches"]
        assert len(payload["written"]) == 3
        assert jsonl.read_text().count("\n") == payload["events"]
        assert "# TYPE" in metrics.read_text()

    def test_trace_smoke(self, capsys, tmp_path):
        out = tmp_path / "smoke.json"
        assert main(["trace", "--smoke", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "telemetry smoke check ok" in text
        assert out.exists()
