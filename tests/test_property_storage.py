"""Property tests for the storage and resize layers.

These target the vectorized machinery underneath the table: slot
claiming under arbitrary bucket collision patterns, rebuild round-trips,
and content preservation across resize sequences.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DyCuckooConfig
from repro.core.subtable import Subtable
from repro.core.table import DyCuckooTable


class TestPlaceRoundProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.integers(min_value=1, max_value=10 ** 6)),
                    min_size=1, max_size=60, unique_by=lambda t: t[1]))
    @settings(max_examples=80, deadline=None)
    def test_place_round_conserves_entries(self, ops):
        """One round never loses or duplicates entries.

        Every op is either updated, placed, flagged full-leader, or left
        for retry; placed ops are physically present; the live counter
        matches physical occupancy.
        """
        st_ = Subtable(8, 4)
        buckets = np.array([b for b, _k in ops], dtype=np.int64)
        codes = np.array([k for _b, k in ops], dtype=np.uint64)
        values = codes * np.uint64(2)
        updated, placed, full = st_.place_round(buckets, codes, values)
        # Disjoint outcomes.
        assert not np.any(updated & placed)
        assert not np.any(placed & full)
        assert not np.any(updated & full)
        # Placed ops are findable in their bucket.
        for i in np.flatnonzero(placed):
            assert st_.contains(buckets[i:i + 1], codes[i:i + 1])[0]
        st_.validate()

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_full_bucket_has_one_leader(self, capacity, extra):
        """A full bucket elects exactly one eviction leader per round."""
        st_ = Subtable(4, capacity)
        fillers = np.arange(1, capacity + 1, dtype=np.uint64)
        st_.place_round(np.zeros(capacity, dtype=np.int64), fillers,
                        fillers)
        newcomers = np.arange(100, 100 + extra, dtype=np.uint64)
        _upd, placed, full = st_.place_round(
            np.zeros(extra, dtype=np.int64), newcomers, newcomers)
        assert not placed.any()
        assert full.sum() == 1


class TestRebuildProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=10 ** 9),
                              st.integers(min_value=0, max_value=10 ** 9)),
                    min_size=0, max_size=48,
                    unique_by=lambda t: t[0]))
    @settings(max_examples=60, deadline=None)
    def test_rebuild_round_trip(self, entries):
        """Exported entries rebuild into an equivalent subtable."""
        st_ = Subtable(16, 4)
        codes = np.array([k for k, _v in entries], dtype=np.uint64)
        values = np.array([v for _k, v in entries], dtype=np.uint64)
        buckets = (codes % np.uint64(16)).astype(np.int64)
        # Cap at capacity per bucket for a valid rebuild.
        keep = np.zeros(len(codes), dtype=bool)
        counts: dict = {}
        for i, b in enumerate(buckets):
            if counts.get(int(b), 0) < 4:
                keep[i] = True
                counts[int(b)] = counts.get(int(b), 0) + 1
        st_.rebuild(16, codes[keep], values[keep], buckets[keep])
        st_.validate()
        out_codes, out_values, out_buckets = st_.export_entries()
        order_in = np.argsort(codes[keep])
        order_out = np.argsort(out_codes)
        assert np.array_equal(out_codes[order_out], codes[keep][order_in])
        assert np.array_equal(out_values[order_out], values[keep][order_in])
        assert np.array_equal(out_buckets[order_out],
                              buckets[keep][order_in])


class TestResizeSequences:
    @given(st.lists(st.sampled_from(["up", "down"]), min_size=1,
                    max_size=6),
           st.integers(min_value=50, max_value=400))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_resize_sequences_preserve_contents(self, moves,
                                                          n_keys):
        """Any feasible up/down sequence keeps every entry findable."""
        from repro.errors import ResizeError

        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8,
                                             min_buckets=8,
                                             auto_resize=False))
        rng = np.random.default_rng(n_keys)
        keys = np.unique(rng.integers(1, 1 << 62, n_keys * 2
                                      ).astype(np.uint64))[:n_keys]
        table.insert(keys, keys)
        for move in moves:
            try:
                if move == "up":
                    table.upsize()
                else:
                    table.downsize()
            except ResizeError:
                continue  # at minimum size or unresolvable spill
            table.validate()
            sizes = [s.n_buckets for s in table.subtables]
            assert max(sizes) <= 2 * min(sizes)
        values, found = table.find(keys)
        assert found.all()
        assert np.array_equal(values, keys)
