"""Differential fuzzing: DyCuckoo vs a dict model, with and without faults.

Hypothesis drives mixed operation sequences against both the table and a
plain dict under a tight ``[alpha, beta]`` band (so resizes fire
constantly) and, in the fault-injected variant, under a seeded chaos
plan.  Any divergence shrinks to a minimal operation sequence plus a
replayable fault script, printed in the failure message.

Every fuzz table also carries a :class:`~repro.telemetry.FlightRecorder`,
so a counterexample ships with its post-mortem bundle: the failure
message includes the recorder digest (recent events, trip reason, table
state) alongside the REPLAY script.

``REPRO_FUZZ_EXAMPLES`` scales the per-test example budget (CI raises
it; the default keeps local runs quick).
"""

import json
import os

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import check_invariants
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.faults import FaultPlan, default_chaos_plan
from repro.sanitizer import Sanitizer
from repro.telemetry import FlightRecorder

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

KEY = st.integers(min_value=0, max_value=200)
VALUE = st.integers(min_value=0, max_value=1 << 32)

op_strategy = st.one_of(
    st.tuples(st.just("insert"),
              st.lists(st.tuples(KEY, VALUE), min_size=1, max_size=40)),
    st.tuples(st.just("delete"), st.lists(KEY, min_size=1, max_size=40)),
    st.tuples(st.just("find"), st.lists(KEY, min_size=1, max_size=40)),
)


def storm_config() -> DyCuckooConfig:
    """A tight fill band so nearly every batch crosses a resize bound."""
    return DyCuckooConfig(initial_buckets=8, bucket_capacity=4,
                          min_buckets=4, alpha=0.45, beta=0.55)


def apply_batch(table: DyCuckooTable, model: dict, op) -> None:
    kind, payload = op
    if kind == "insert":
        keys = np.array([k for k, _ in payload], dtype=np.uint64)
        values = np.array([v for _, v in payload], dtype=np.uint64)
        table.insert(keys, values)
        for k, v in payload:
            model[k] = v
    elif kind == "delete":
        keys = np.array(payload, dtype=np.uint64)
        removed = table.delete(keys)
        expected_removed = 0
        seen = set()
        for k in payload:
            if k in model and k not in seen:
                expected_removed += 1
            seen.add(k)
            model.pop(k, None)
        assert int(removed.sum()) == expected_removed
    else:
        keys = np.array(payload, dtype=np.uint64)
        values, found = table.find(keys)
        for i, k in enumerate(payload):
            assert bool(found[i]) == (k in model)
            if k in model:
                assert int(values[i]) == model[k]


def recorder_digest(table: DyCuckooTable) -> str:
    """The flight-recorder bundle digest for a failure message."""
    recorder = getattr(table, "recorder", None)
    if recorder is None or not recorder.enabled:
        return ""
    return "\nFLIGHT RECORDER: " + json.dumps(recorder.summary())


def assert_sanitizer_clean(table: DyCuckooTable) -> None:
    """No race/lock-discipline violations, no subtable lock left held.

    A violation's failure message carries the flight-recorder digest
    when the table has one attached (the violation itself already
    tripped the recorder, so the bundle frames the offending events).
    """
    san = table.sanitizer
    if san.enabled:
        assert san.ok, (
            f"{[str(v) for v in san.violations]}{recorder_digest(table)}")
        assert not san.report()["subtable_locks_held"]


def assert_model_agreement(table: DyCuckooTable, model: dict) -> None:
    assert len(table) == len(model)
    if model:
        keys = np.array(sorted(model), dtype=np.uint64)
        values, found = table.find(keys)
        assert bool(found.all())
        assert [int(v) for v in values] == [model[int(k)] for k in keys]


class TestFaultFreeFuzz:
    @given(st.lists(op_strategy, min_size=1, max_size=25))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_resize_storm_matches_dict(self, ops):
        table = DyCuckooTable(storm_config())
        table.set_sanitizer(Sanitizer())
        table.set_recorder(FlightRecorder())
        model: dict = {}
        mutated = False
        try:
            for op in ops:
                apply_batch(table, model, op)
                mutated = mutated or op[0] != "find"
                # Fill bounds are only enforceable once a mutating batch
                # has given enforce_bounds a chance to run.
                check_invariants(table, check_fill=mutated)
            assert_model_agreement(table, model)
            assert_sanitizer_clean(table)
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}{recorder_digest(table)}") from exc


class TestFaultInjectedFuzz:
    @given(st.lists(op_strategy, min_size=1, max_size=25),
           st.integers(min_value=0, max_value=2 ** 16),
           st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chaos_matches_dict(self, ops, fault_seed, intensity):
        table = DyCuckooTable(storm_config())
        table.set_sanitizer(Sanitizer())
        table.set_recorder(FlightRecorder())
        plan = default_chaos_plan(seed=fault_seed, intensity=intensity)
        table.set_fault_plan(plan)
        model: dict = {}
        try:
            for op in ops:
                apply_batch(table, model, op)
                check_invariants(table)
            assert_model_agreement(table, model)
            # Injected faults must classify as intentional, not as
            # races or lock-discipline violations.
            assert_sanitizer_clean(table)
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nREPLAY: FaultPlan.from_script("
                f"{plan.script_json()!r})"
                f"{recorder_digest(table)}") from exc

    @given(st.lists(op_strategy, min_size=1, max_size=25),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_scripted_replay_reproduces_chaos_run(self, ops, fault_seed):
        live = DyCuckooTable(storm_config())
        plan = default_chaos_plan(seed=fault_seed)
        live.set_fault_plan(plan)
        model: dict = {}
        for op in ops:
            apply_batch(live, model, op)

        replayed = DyCuckooTable(storm_config())
        replayed.set_fault_plan(FaultPlan.from_script(plan.to_script()))
        replay_model: dict = {}
        for op in ops:
            apply_batch(replayed, replay_model, op)
        assert live.to_dict() == replayed.to_dict()
        assert sorted(live.stash.export_entries()[0].tolist()) == \
            sorted(replayed.stash.export_entries()[0].tolist())


class TestStashDrainDownsizeFuzz:
    """Resize storms composed with active stash drain-back.

    The earlier suites exercise resize churn and stash degradation
    separately; these compose them: eviction faults park entries in
    the stash while delete waves drive repeated downsizes, so drain
    epochs land *mid-downsize* (the drain's re-inserts race the
    shrinking geometry and can themselves trigger resize pressure).
    """

    @given(ops=st.lists(op_strategy, min_size=2, max_size=25),
           fault_seed=st.integers(min_value=0, max_value=2 ** 16),
           evict_rate=st.floats(min_value=0.05, max_value=0.5),
           abort_rate=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_drain_back_amid_downsize_matches_dict(
            self, ops, fault_seed, evict_rate, abort_rate):
        table = DyCuckooTable(storm_config())
        table.set_sanitizer(Sanitizer())
        table.set_recorder(FlightRecorder())
        plan = FaultPlan(seed=fault_seed,
                         rates={"insert.evict": evict_rate,
                                "resize.abort.trigger": abort_rate,
                                "resize.abort.rehash": abort_rate},
                         storms={"insert.evict": 4})
        table.set_fault_plan(plan)
        model: dict = {}
        try:
            # Degrade phase: hypothesis-driven traffic under eviction
            # faults and resize aborts seeds the stash.
            for op in ops:
                apply_batch(table, model, op)
                check_invariants(table)
                assert len(table) == len(model)
            # Drain-back phase: delete every live key in waves, so
            # each wave can cross the alpha bound, downsize, and open
            # a fresh drain epoch while the stash is still occupied.
            live = sorted(model)
            for start in range(0, len(live), 16):
                wave = np.array(live[start:start + 16], dtype=np.uint64)
                removed = table.delete(wave)
                assert int(removed.sum()) == len(wave)
                for k in wave.tolist():
                    model.pop(int(k), None)
                check_invariants(table)
                assert len(table) == len(model)
            assert_model_agreement(table, model)
            assert_sanitizer_clean(table)
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nREPLAY: FaultPlan.from_script("
                f"{plan.script_json()!r})"
                f"{recorder_digest(table)}") from exc

    def test_drain_epoch_lands_mid_downsize(self):
        """Deterministic witness for the composed interaction.

        With seed 7, at least one delete batch performs a downsize
        *and* drains stash entries in the same stats delta — the exact
        interaction the property test above fuzzes around.  If a
        behaviour change makes this seed stop producing the overlap,
        re-tune the seed rather than weakening the assertions.
        """
        table = DyCuckooTable(storm_config())
        table.set_sanitizer(Sanitizer())
        plan = FaultPlan(seed=7,
                         rates={"insert.evict": 0.3,
                                "resize.abort.trigger": 0.3,
                                "resize.abort.rehash": 0.3},
                         storms={"insert.evict": 4})
        table.set_fault_plan(plan)
        model: dict = {}
        keys = np.arange(1, 601, dtype=np.uint64)
        for start in range(0, 600, 40):
            wave = keys[start:start + 40]
            table.insert(wave, wave * np.uint64(5))
            for k in wave.tolist():
                model[k] = k * 5
            check_invariants(table)
        assert table.stash.high_water > 0, "stash never degraded"

        witnessed = False
        for start in range(560, -40, -40):
            before = table.stats.snapshot()
            wave = keys[start:start + 40]
            removed = table.delete(wave)
            expected = sum(1 for k in wave.tolist() if k in model)
            assert int(removed.sum()) == expected
            for k in wave.tolist():
                model.pop(k, None)
            delta = table.stats.delta(before)
            if delta.get("downsizes", 0) and delta.get("stash_drained", 0):
                witnessed = True
            check_invariants(table)
            assert len(table) == len(model)
        assert witnessed, \
            "no delete batch combined a downsize with a stash drain"
        stats = table.stats.snapshot()
        assert stats["stash_pushes"] > 0
        assert stats["stash_drained"] > 0
        assert stats["downsizes"] > 0
        assert_model_agreement(table, model)
        assert_sanitizer_clean(table)


class TestDeterministicAcceptance:
    def test_10k_mixed_ops_with_default_chaos(self):
        """Acceptance gate: 10k mixed ops under the default chaos plan,
        zero divergences, invariants after every batch."""
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8))
        table.set_sanitizer(Sanitizer())
        plan = default_chaos_plan(seed=2021)
        table.set_fault_plan(plan)
        model: dict = {}
        rng = np.random.default_rng(2021)
        total_ops = 0
        while total_ops < 10_000:
            insert_keys = rng.integers(0, 2_000, 128, dtype=np.uint64)
            insert_values = insert_keys * np.uint64(7) + np.uint64(1)
            table.insert(insert_keys, insert_values)
            for k, v in zip(insert_keys.tolist(), insert_values.tolist()):
                model[k] = v

            find_keys = rng.integers(0, 2_000, 64, dtype=np.uint64)
            values, found = table.find(find_keys)
            for i, k in enumerate(find_keys.tolist()):
                assert bool(found[i]) == (k in model), \
                    f"find divergence on key {k}\nREPLAY: " \
                    f"FaultPlan.from_script({plan.script_json()!r})"
                if k in model:
                    assert int(values[i]) == model[k]

            delete_keys = np.unique(
                rng.integers(0, 2_000, 32, dtype=np.uint64))
            removed = table.delete(delete_keys)
            expected = sum(1 for k in delete_keys.tolist() if k in model)
            assert int(removed.sum()) == expected
            for k in delete_keys.tolist():
                model.pop(k, None)

            check_invariants(table)
            assert len(table) == len(model)
            total_ops += 128 + 64 + len(delete_keys)

        assert table.to_dict() == model
        assert plan.fired, "chaos plan never fired — rates are dead"
        assert_sanitizer_clean(table)

class TestMigrationEpochFuzz:
    """Fault-injected fuzzing with epochs held open across batches.

    ``migration_budget=1`` is the adversarial drain setting: every
    batch moves at most one bucket pair, so a resize epoch opened by
    one batch stays open across many subsequent batches and nearly
    every operation probes the dual old/new view.  Fault aborts fire
    at epoch open (trigger/plan/rehash) while earlier epochs are still
    draining — the table must stay dict-equivalent throughout, and
    again after a final synchronous drain.
    """

    def _trickle_config(self) -> DyCuckooConfig:
        return DyCuckooConfig(initial_buckets=8, bucket_capacity=4,
                              min_buckets=4, alpha=0.45, beta=0.55,
                              migration_budget=1)

    @given(ops=st.lists(op_strategy, min_size=2, max_size=25),
           fault_seed=st.integers(min_value=0, max_value=2 ** 16),
           abort_rate=st.floats(min_value=0.05, max_value=0.5),
           evict_rate=st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_open_epochs_match_dict(self, ops, fault_seed, abort_rate,
                                    evict_rate):
        table = DyCuckooTable(self._trickle_config())
        table.set_sanitizer(Sanitizer())
        table.set_recorder(FlightRecorder())
        plan = FaultPlan(seed=fault_seed,
                         rates={"insert.evict": evict_rate,
                                "resize.abort.trigger": abort_rate,
                                "resize.abort.plan": abort_rate,
                                "resize.abort.rehash": abort_rate})
        table.set_fault_plan(plan)
        model: dict = {}
        mutated = False
        try:
            for op in ops:
                apply_batch(table, model, op)
                mutated = mutated or op[0] != "find"
                check_invariants(table, check_fill=mutated)
                assert len(table) == len(model)
            assert_model_agreement(table, model)
            # Close every epoch the trickle budget left open, then the
            # settled table must still agree with the model.
            table.finalize_resizes()
            assert all(st_.migration is None for st_ in table.subtables)
            check_invariants(table, check_fill=mutated)
            assert_model_agreement(table, model)
            assert_sanitizer_clean(table)
        except AssertionError as exc:
            raise AssertionError(
                f"{exc}\nREPLAY: FaultPlan.from_script("
                f"{plan.script_json()!r})"
                f"{recorder_digest(table)}") from exc

    def test_trickle_drain_holds_epochs_open(self):
        """Deterministic witness that the budget really trickles.

        Fault-free, so the only nondeterminism is the key stream: the
        growth phase must leave at least one epoch open at some batch
        boundary (the property test above is vacuous otherwise).
        """
        table = DyCuckooTable(self._trickle_config())
        table.set_sanitizer(Sanitizer())
        model: dict = {}
        keys = np.arange(1, 241, dtype=np.uint64)
        saw_open_epoch = False
        for start in range(0, 240, 24):
            wave = keys[start:start + 24]
            table.insert(wave, wave * np.uint64(3))
            for k in wave.tolist():
                model[k] = k * 3
            if any(st_.migration is not None for st_ in table.subtables):
                saw_open_epoch = True
            check_invariants(table, check_fill=True)
            assert len(table) == len(model)
        assert saw_open_epoch, \
            "migration_budget=1 never left an epoch open at a batch end"
        table.finalize_resizes()
        assert_model_agreement(table, model)
        assert_sanitizer_clean(table)
