"""Tests for the benchmark regression comparator."""

import json

import pytest

from repro.bench.regression import (RegressionReport, compare_dirs,
                                    compare_payloads, format_report)


def write(path, payload):
    path.write_text(json.dumps(payload))


class TestComparePayloads:
    def test_identical_is_clean(self):
        report = RegressionReport()
        payload = {"a": 1.0, "b": [1, 2, {"c": 3.5}]}
        compare_payloads("x", payload, payload, 0.05, report)
        assert report.clean
        assert report.compared_leaves == 4

    def test_within_tolerance_is_clean(self):
        report = RegressionReport()
        compare_payloads("x", {"mops": 100.0}, {"mops": 103.0}, 0.05,
                         report)
        assert report.clean

    def test_beyond_tolerance_is_flagged(self):
        report = RegressionReport()
        compare_payloads("x", {"mops": 100.0}, {"mops": 80.0}, 0.05,
                         report)
        assert len(report.deviations) == 1
        dev = report.deviations[0]
        assert dev.path == "mops"
        assert dev.ratio == pytest.approx(0.8)

    def test_structural_changes_reported(self):
        report = RegressionReport()
        compare_payloads("x", {"old": 1, "both": 2}, {"new": 1, "both": 2},
                         0.05, report)
        assert report.missing_in_current == ["x:old"]
        assert report.added_in_current == ["x:new"]

    def test_string_leaf_change(self):
        report = RegressionReport()
        compare_payloads("x", {"name": "a"}, {"name": "b"}, 0.05, report)
        assert len(report.deviations) == 1


class TestCompareDirs:
    def test_directory_comparison(self, tmp_path):
        base = tmp_path / "base"
        curr = tmp_path / "curr"
        base.mkdir()
        curr.mkdir()
        write(base / "fig9.json", {"DyCuckoo": 150.0, "MegaKV": 140.0})
        write(curr / "fig9.json", {"DyCuckoo": 152.0, "MegaKV": 90.0})
        write(base / "gone.json", {"x": 1})
        write(curr / "fresh.json", {"y": 2})
        report = compare_dirs(base, curr, rel_tolerance=0.05)
        assert not report.clean
        assert [d.path for d in report.deviations] == ["MegaKV"]
        assert report.missing_in_current == ["gone.json"]
        assert report.added_in_current == ["fresh.json"]

    def test_format_report(self, tmp_path):
        base = tmp_path / "base"
        curr = tmp_path / "curr"
        base.mkdir()
        curr.mkdir()
        write(base / "a.json", {"m": 100.0})
        write(curr / "a.json", {"m": 100.0})
        clean_text = format_report(compare_dirs(base, curr))
        assert "no regressions" in clean_text
        write(curr / "a.json", {"m": 10.0})
        dirty_text = format_report(compare_dirs(base, curr))
        assert "CHANGED" in dirty_text
        assert "0.10x" in dirty_text


class TestEndToEndWithArtifacts:
    def test_dump_then_compare(self, tmp_path, monkeypatch):
        """The artifacts writer and the comparator round-trip."""
        from repro.bench.artifacts import ENV_VAR, maybe_dump

        base = tmp_path / "base"
        curr = tmp_path / "curr"
        monkeypatch.setenv(ENV_VAR, str(base))
        maybe_dump("run", {("COM", "DyCuckoo"): 123.0})
        monkeypatch.setenv(ENV_VAR, str(curr))
        maybe_dump("run", {("COM", "DyCuckoo"): 123.0})
        assert compare_dirs(base, curr).clean


class TestFilters:
    """``only`` restricts artifacts; ``skip`` drops noisy leaves."""

    def make_dirs(self, tmp_path):
        base = tmp_path / "base"
        curr = tmp_path / "curr"
        base.mkdir()
        curr.mkdir()
        write(base / "BENCH_kernel_engine.json",
              {"rounds": 10, "seconds": 1.0})
        write(curr / "BENCH_kernel_engine.json",
              {"rounds": 10, "seconds": 3.0})
        write(base / "BENCH_other.json", {"mops": 100.0})
        # BENCH_other missing from curr — would normally be flagged.
        return base, curr

    def test_skip_drops_noisy_leaves(self, tmp_path):
        base, curr = self.make_dirs(tmp_path)
        report = compare_dirs(base, curr, only=["BENCH_kernel_engine*"],
                              skip=["*seconds*"])
        assert report.clean
        assert report.compared_leaves == 1  # just "rounds"

    def test_without_skip_the_noise_is_flagged(self, tmp_path):
        base, curr = self.make_dirs(tmp_path)
        report = compare_dirs(base, curr, only=["BENCH_kernel_engine*"])
        assert [d.path for d in report.deviations] == ["seconds"]

    def test_only_restricts_artifact_set(self, tmp_path):
        base, curr = self.make_dirs(tmp_path)
        unrestricted = compare_dirs(base, curr, skip=["*seconds*"])
        assert unrestricted.missing_in_current == ["BENCH_other.json"]
        restricted = compare_dirs(base, curr,
                                  only=["BENCH_kernel_engine*"],
                                  skip=["*seconds*"])
        assert restricted.clean

    def test_skip_matches_qualified_name(self, tmp_path):
        base = tmp_path / "base"
        curr = tmp_path / "curr"
        base.mkdir()
        curr.mkdir()
        write(base / "a.json", {"x": 1.0})
        write(curr / "a.json", {"x": 2.0})
        write(base / "b.json", {"x": 1.0})
        write(curr / "b.json", {"x": 2.0})
        # Patterns see "artifact:path", so a skip can target one file.
        report = compare_dirs(base, curr, skip=["a.json:*"])
        assert [f"{d.artifact}:{d.path}" for d in report.deviations] == \
            ["b.json:x"]

    def test_perf_gate_cli_flags(self, tmp_path, capsys):
        from benchmarks import perf_gate

        base, curr = self.make_dirs(tmp_path)
        strict = ["--strict", "--only", "BENCH_kernel_engine*"]
        assert perf_gate.main([str(base), str(curr), *strict,
                               "--skip", "*seconds*"]) == 0
        assert perf_gate.main([str(base), str(curr), *strict]) == 1
