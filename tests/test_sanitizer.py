"""SIMT sanitizer: the six-pass suite — dynamic passes plus audits.

Three layers of coverage:

* unit tests of the :class:`~repro.sanitizer.Sanitizer` state machine —
  lockset pairing, the locking contract, extent/init/sync checks,
  dedup, the null-object gate;
* the seeded intentional-violation fixtures
  (:mod:`repro.sanitizer.fixtures`): each must produce *exactly* its
  expected violation kinds with round/warp/site attribution;
* end-to-end audits: a clean workload on both engines (including
  mid-migration-epoch paths) yields zero violations
  (``run_clean_audit``), and the determinism lint is clean over
  ``src/repro`` while flagging every rule in
  :data:`~repro.sanitizer.fixtures.BAD_KERNEL_SOURCE`.

The static protocol-contract analyzer has its own suite in
``tests/test_contracts.py``.
"""

import pytest

from repro.cli import main
from repro.sanitizer import (ACCESS_KINDS, NULL_SANITIZER,
                             VIOLATION_KINDS, Sanitizer)
from repro.sanitizer.audit import run_clean_audit, run_fixture_suite
from repro.sanitizer.fixtures import (BAD_CONTRACT_SOURCES,
                                      BAD_KERNEL_SOURCE, FIXTURE_PASSES,
                                      FIXTURES, _FixtureTable)
from repro.sanitizer.lint import (is_strict_path, lint_paths,
                                  lint_source)


def kernel(san, name="k", locking=True):
    san.begin_kernel(name, locking=locking)
    san.begin_round(0)
    return san


class TestRacecheckUnit:
    def test_write_write_disjoint_locksets_is_race(self):
        san = kernel(Sanitizer())
        san.record_access(0, "write", "bucket", 7, site="a")
        san.record_access(1, "write", "bucket", 7, site="b")
        san.end_kernel()
        races = [v for v in san.violations if v.kind == "race"]
        assert len(races) == 1
        assert races[0].pass_name == "racecheck"
        assert {races[0].warp, races[0].other_warp} == {0, 1}
        assert races[0].round_index == 0
        assert races[0].address == 7

    def test_common_lock_orders_the_pair(self):
        san = kernel(Sanitizer())
        for warp in (0, 1):
            san.on_lock_acquire(warp, 7)
            san.record_access(warp, "write", "bucket", 7)
            san.on_lock_release(warp, 7)
        san.end_kernel()
        assert san.ok, [str(v) for v in san.violations]

    def test_read_read_never_races(self):
        san = kernel(Sanitizer())
        san.record_access(0, "read", "bucket", 7)
        san.record_access(1, "read", "bucket", 7)
        san.end_kernel()
        assert san.ok

    def test_same_warp_never_races_itself(self):
        san = kernel(Sanitizer())
        san.record_access(0, "write", "bucket", 7)
        san.record_access(0, "read", "bucket", 7)
        san.end_kernel()
        races = [v for v in san.violations if v.kind == "race"]
        assert not races

    def test_different_rounds_are_ordered(self):
        """Round boundaries are the simulator's happens-before edges."""
        san = kernel(Sanitizer())
        san.record_access(0, "write", "bucket", 7)
        san.begin_round(1)
        san.record_access(1, "write", "bucket", 7)
        san.end_kernel()
        races = [v for v in san.violations if v.kind == "race"]
        assert not races

    def test_probe_and_atomic_kinds_exempt_from_pairing(self):
        san = kernel(Sanitizer())
        san.record_access(0, "write", "bucket", 7)
        san.record_access(1, "probe", "bucket", 7)
        san.record_access(2, "atomic", "value", 7)
        san.end_kernel()
        races = [v for v in san.violations if v.kind == "race"]
        assert not races

    def test_race_dedup_one_report_per_word_per_round(self):
        san = kernel(Sanitizer())
        for warp in range(4):
            san.record_access(warp, "write", "bucket", 9)
        san.end_kernel()
        races = [v for v in san.violations if v.kind == "race"]
        assert len(races) == 1

    def test_unlocked_write_under_locking_contract(self):
        san = kernel(Sanitizer(), locking=True)
        san.record_access(3, "write", "bucket", 11, site="ph2")
        [v] = [v for v in san.violations if v.kind == "unlocked-write"]
        assert v.warp == 3 and v.address == 11 and v.site == "ph2"

    def test_lock_free_kernels_exempt_from_unlocked_write(self):
        san = kernel(Sanitizer(), name="delete", locking=False)
        san.record_access(3, "write", "bucket", 11)
        san.end_kernel()
        assert san.ok

    def test_locked_write_is_clean(self):
        san = kernel(Sanitizer())
        san.on_lock_acquire(3, 11)
        san.record_access(3, "write", "bucket", 11)
        san.on_lock_release(3, 11)
        san.end_kernel()
        assert san.ok


class TestLockcheckUnit:
    def test_double_acquire(self):
        san = kernel(Sanitizer())
        san.on_lock_acquire(0, 5)
        san.on_lock_acquire(0, 5)
        [v] = san.violations
        assert v.kind == "double-acquire" and v.warp == 0

    def test_lock_not_exclusive(self):
        san = kernel(Sanitizer())
        san.on_lock_acquire(0, 5)
        san.on_lock_acquire(1, 5)
        [v] = san.violations
        assert v.kind == "lock-not-exclusive"
        assert v.warp == 1 and v.other_warp == 0

    def test_double_release(self):
        san = kernel(Sanitizer())
        san.on_lock_acquire(0, 5)
        san.on_lock_release(0, 5)
        san.on_lock_release(0, 5)
        [v] = san.violations
        assert v.kind == "double-release"

    def test_leaked_lock_at_kernel_exit(self):
        san = kernel(Sanitizer(), name="leaky")
        san.on_lock_acquire(2, 5)
        san.end_kernel()
        [v] = san.violations
        assert v.kind == "leaked-lock" and v.warp == 2
        assert "leaky" in v.message

    def test_round_release_pairs_everything(self):
        san = kernel(Sanitizer())
        san.on_lock_acquire(0, 5)
        san.on_lock_acquire(1, 6)
        san.on_round_release()
        san.end_kernel()
        assert san.ok
        assert san.stats["round_releases"] == 1

    def test_unwind_release_accounts_not_violates(self):
        san = kernel(Sanitizer())
        san.on_lock_acquire(0, 5)
        san.on_unwind_release(0, 5)
        san.end_kernel()
        assert san.ok
        assert san.stats["unwind_releases"] == 1

    def test_one_subtable_resize_guarantee(self):
        san = Sanitizer()
        san.on_subtable_lock(0, "upsize")
        san.on_subtable_lock(1, "spill")
        [v] = san.violations
        assert v.kind == "second-subtable-lock"
        san2 = Sanitizer()
        san2.on_subtable_lock(0, "upsize")
        san2.on_subtable_unlock(0)
        san2.on_subtable_lock(1, "downsize")
        san2.on_subtable_unlock(1)
        assert san2.ok
        assert san2.report()["subtable_locks_held"] == 0


def memkernel(san, rows_per_subtable=(8, 8), locking=False):
    """Kernel scope with a fixture table attached for extent checks."""
    table = _FixtureTable(rows_per_subtable)
    san.begin_kernel("k", locking=locking, table=table)
    san.begin_round(0)
    return san, table


class TestMemcheckUnit:
    def test_in_extent_access_is_clean(self):
        san, _ = memkernel(Sanitizer())
        san.record_access(0, "probe", "bucket", (1 << 40) | 7)
        san.end_kernel()
        assert san.ok
        assert san.stats["extent_checks"] == 1

    def test_bucket_beyond_live_rows_is_oob(self):
        san, _ = memkernel(Sanitizer())
        san.record_access(0, "probe", "bucket", (0 << 40) | 8, site="p")
        [v] = san.violations
        assert v.kind == "oob-access" and v.pass_name == "memcheck"
        assert v.site == "p" and v.warp == 0

    def test_subtable_beyond_table_is_oob(self):
        san, _ = memkernel(Sanitizer())
        san.record_access(0, "probe", "bucket", (5 << 40) | 0)
        [v] = san.violations
        assert v.kind == "oob-access"

    def test_retired_epoch_view_is_use_after_retire(self):
        san, table = memkernel(Sanitizer())
        san.on_epoch_retire(table, 1, old_rows=16, new_rows=8)
        san.record_access(0, "probe", "bucket", (1 << 40) | 12)
        [v] = san.violations
        assert v.kind == "use-after-retire"
        assert san.stats["retired_epochs"] == 1

    def test_beyond_the_retired_extent_is_plain_oob(self):
        san, table = memkernel(Sanitizer())
        san.on_epoch_retire(table, 1, old_rows=16, new_rows=8)
        san.record_access(0, "probe", "bucket", (1 << 40) | 40)
        [v] = san.violations
        assert v.kind == "oob-access"

    def test_extent_tracks_live_geometry(self):
        """Growing the attached table legalizes the new rows."""
        san, table = memkernel(Sanitizer())
        import numpy as np
        table.subtables[0].keys = np.zeros((16, 4), dtype=np.uint64)
        san.record_access(0, "probe", "bucket", (0 << 40) | 12)
        san.end_kernel()
        assert san.ok

    def test_stash_overflow_and_alloc_lifetime(self):
        san = Sanitizer()
        san.on_stash_write(2, 8)
        assert san.ok
        san.on_stash_write(9, 8, site="stash.push")
        [v] = san.violations
        assert v.kind == "stash-overflow"
        san2 = Sanitizer()
        san2.begin_alloc_scope()
        san2.on_alloc("scratch", 256)
        san2.end_alloc_scope(site="scope")
        [v2] = san2.violations
        assert v2.kind == "alloc-leak"
        san3 = Sanitizer()
        san3.on_alloc("buf", 64)
        san3.on_free("buf", known=True)
        san3.on_free("buf", known=False)
        [v3] = san3.violations
        assert v3.kind == "double-free"

    def test_memcheck_off_suppresses_extent_violations(self):
        # The word decode still runs for initcheck's sake, but the
        # out-of-bounds report is gated on the memcheck flag.
        san, _ = memkernel(Sanitizer(memcheck=False))
        san.record_access(0, "probe", "bucket", (5 << 40) | 0)
        san.end_kernel()
        assert san.ok
        assert san.stats["extent_checks"] == 1
        # With both word-level passes off, the decode is skipped too.
        san2, _ = memkernel(Sanitizer(memcheck=False, initcheck=False))
        san2.record_access(0, "probe", "bucket", (5 << 40) | 0)
        san2.end_kernel()
        assert san2.ok
        assert san2.stats["extent_checks"] == 0


class TestInitcheckUnit:
    def test_read_of_marked_slot_is_uninit_read(self):
        san, table = memkernel(Sanitizer())
        san.mark_uninitialized(table, 0, [3, 5])
        san.record_access(0, "probe", "bucket", (0 << 40) | 3, site="rd")
        [v] = san.violations
        assert v.kind == "uninit-read" and v.pass_name == "initcheck"
        assert san.stats["init_checks"] > 0

    def test_write_clears_the_mark(self):
        san, table = memkernel(Sanitizer(), locking=True)
        san.mark_uninitialized(table, 0, [5])
        san.on_lock_acquire(0, (0 << 40) | 5)
        san.record_access(0, "write", "bucket", (0 << 40) | 5)
        san.record_access(0, "read", "bucket", (0 << 40) | 5)
        san.on_lock_release(0, (0 << 40) | 5)
        san.end_kernel()
        assert san.ok, [str(v) for v in san.violations]

    def test_epoch_retire_prunes_dead_marks(self):
        san, table = memkernel(Sanitizer(memcheck=False))
        san.mark_uninitialized(table, 1, [2, 12])
        san.on_epoch_retire(table, 1, old_rows=16, new_rows=8)
        san.record_access(0, "probe", "bucket", (1 << 40) | 2)
        [v] = san.violations
        assert v.kind == "uninit-read" and v.address == (1 << 40) | 2


class TestSynccheckUnit:
    def test_inactive_lane_vote_is_divergent_sync(self):
        san = kernel(Sanitizer())
        san.on_vote(2, 0b0111, 0b0011, site="ballot")
        [v] = san.violations
        assert v.kind == "divergent-sync" and v.warp == 2
        assert san.stats["votes_checked"] == 1

    def test_subset_vote_is_clean(self):
        san = kernel(Sanitizer())
        san.on_vote(2, 0b0001, 0b0011)
        san.on_vote(2, 0b0011, 0b0011)
        san.end_kernel()
        assert san.ok
        assert san.stats["votes_checked"] == 2

    def test_live_lanes_at_exit_is_divergent_exit(self):
        san = kernel(Sanitizer())
        san.on_kernel_exit(3, site="tail")
        [v] = san.violations
        assert v.kind == "divergent-exit"
        san.end_kernel()
        assert san.stats["kernel_exits"] == 1

    def test_unmatched_kernel_brackets(self):
        san = Sanitizer()
        san.begin_kernel("outer")
        san.begin_kernel("inner")
        assert [v.kind for v in san.violations] == [
            "unmatched-kernel-bracket"]
        san.end_kernel()
        san.end_kernel()
        [v] = [v for v in san.violations[1:]]
        assert v.kind == "unmatched-kernel-bracket"


class TestSanitizerPlumbing:
    def test_null_sanitizer_is_disabled_and_shared(self):
        assert NULL_SANITIZER.enabled is False
        assert Sanitizer.enabled is True
        from repro.core.config import DyCuckooConfig
        from repro.core.table import DyCuckooTable
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=8, bucket_capacity=4, auto_resize=False))
        assert table.sanitizer is NULL_SANITIZER
        san = table.set_sanitizer(Sanitizer())
        assert table.sanitizer is san
        assert table.set_sanitizer(None) is NULL_SANITIZER

    def test_sharded_front_end_shares_one_sanitizer(self):
        import numpy as np
        from repro.core.config import DyCuckooConfig
        from repro.shard import ShardedDyCuckoo
        sharded = ShardedDyCuckoo(num_shards=2, config=DyCuckooConfig(
            initial_buckets=32, bucket_capacity=8, auto_resize=False))
        san = sharded.set_sanitizer(Sanitizer())
        for shard in sharded.shards:
            assert shard.sanitizer is san
        keys = np.arange(1, 257, dtype=np.uint64)
        sharded.execute_mixed(
            np.zeros(len(keys), dtype=np.int8), keys, keys,
            engine="warp")
        assert san.stats["kernels"] > 0
        assert san.ok, [str(v) for v in san.violations]

    def test_report_shape(self):
        san = kernel(Sanitizer())
        san.record_access(0, "write", "bucket", 7)
        san.end_kernel()
        report = san.report()
        assert set(report) == {"ok", "stats", "subtable_locks_held",
                               "violations"}
        assert report["ok"] is san.ok is False
        [v] = report["violations"]
        assert set(v) == {"pass", "kind", "message", "site", "round",
                          "warp", "other_warp", "space", "address"}
        assert v["kind"] in VIOLATION_KINDS[v["pass"]]

    def test_max_violations_caps_the_report(self):
        san = kernel(Sanitizer(max_violations=3))
        for address in range(10):
            san.record_access(0, "write", "bucket", address)
        assert len(san.violations) == 3

    def test_passes_can_be_disabled_independently(self):
        san = kernel(Sanitizer(racecheck=False))
        san.record_access(0, "write", "bucket", 7)
        san.record_access(1, "write", "bucket", 7)
        san.end_kernel()
        assert san.ok  # racecheck off; lockcheck still on
        san = kernel(Sanitizer(lockcheck=False))
        san.on_lock_acquire(0, 5)
        san.on_lock_acquire(0, 5)
        san.end_kernel()
        assert san.ok

    def test_injected_faults_classify_not_violate(self):
        san = kernel(Sanitizer())
        san.note_injected("lock.acquire")
        san.note_injected("atomics.cas")
        san.end_kernel()
        assert san.ok
        assert san.stats["injected_events"] == 2

    def test_access_kind_taxonomy_is_closed(self):
        assert set(ACCESS_KINDS) == {"read", "write", "probe", "atomic"}
        assert set(VIOLATION_KINDS) == {
            "racecheck", "lockcheck", "memcheck", "initcheck",
            "synccheck"}
        kinds = [k for ks in VIOLATION_KINDS.values() for k in ks]
        assert len(kinds) == len(set(kinds)), "kind owned by two passes"


class TestSeededFixtures:
    """Each fixture's planted bug must be detected — exactly."""

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_detected_with_attribution(self, name):
        build, expected_kinds = FIXTURES[name]
        san = build()
        assert {v.kind for v in san.violations} == expected_kinds
        for v in san.violations:
            assert v.site, str(v)
            if v.space in ("bucket", "lock"):
                assert v.round_index >= 0, str(v)
                assert v.warp >= 0, str(v)

    def test_double_release_attributed_to_second_round(self):
        build, _ = FIXTURES["double-release"]
        [v] = build().violations
        assert v.round_index == 1
        assert "LockArbiter.release" in v.site

    def test_race_names_both_warps(self):
        build, _ = FIXTURES["race-read-write"]
        [v] = build().violations
        assert {v.warp, v.other_warp} == {0, 1}
        assert "no common lock" in v.message

    def test_fixture_suite_aggregate(self):
        report = run_fixture_suite()
        assert report["ok"], report
        expected_entries = (set(FIXTURES) | {"determinism-lint"}
                            | {f"contract:{rule}"
                               for rule in BAD_CONTRACT_SOURCES})
        assert set(report["fixtures"]) == expected_entries
        for result in report["fixtures"].values():
            assert result["ok"]
            assert result["detected"] == result["expected"]

    def test_fixture_suite_pass_restriction(self):
        """--memcheck-style selectors run only the owning fixtures."""
        report = run_fixture_suite(passes={"memcheck"})
        assert report["ok"], report
        expected = {name for name, owners in FIXTURE_PASSES.items()
                    if "memcheck" in owners}
        assert set(report["fixtures"]) == expected
        assert "divergent-sync" not in report["fixtures"]

    def test_every_fixture_maps_to_its_owning_passes(self):
        assert set(FIXTURE_PASSES) == set(FIXTURES)
        for name, (_, expected_kinds) in FIXTURES.items():
            owners = FIXTURE_PASSES[name]
            assert owners, name
            for kind in expected_kinds:
                assert any(kind in VIOLATION_KINDS[p] for p in owners)


class TestDeterminismLint:
    def test_bad_kernel_source_trips_every_rule(self):
        findings = lint_source(BAD_KERNEL_SOURCE,
                               path="repro/gpusim/bad.py")
        got = [(f.line, f.rule) for f in findings]
        assert got == [
            (8, "unseeded-rng"),
            (9, "wall-clock"),
            (12, "set-iteration"),
            (16, "bare-except"),
            (17, "unseeded-rng"),
        ]
        assert {f.rule for f in findings} == {
            "unseeded-rng", "wall-clock", "set-iteration", "bare-except"}

    def test_non_strict_scope_relaxes_clock_and_sets(self):
        findings = lint_source(BAD_KERNEL_SOURCE,
                               path="repro/bench/tool.py")
        rules = {f.rule for f in findings}
        assert "wall-clock" not in rules
        assert "set-iteration" not in rules
        assert "unseeded-rng" in rules
        assert "bare-except" in rules

    def test_strict_path_classification(self):
        assert is_strict_path("src/repro/gpusim/kernel.py")
        assert is_strict_path("src/repro/kernels/insert.py")
        assert is_strict_path("/abs/src/repro/core/table.py")
        assert is_strict_path("src/repro/shard/executor.py")
        assert is_strict_path("src/repro/scenarios/runner.py")
        assert not is_strict_path("src/repro/cli.py")
        assert not is_strict_path("src/repro/telemetry/export.py")
        assert not is_strict_path("tests/test_sanitizer.py")

    def test_suppression_marker_silences_one_rule(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng()"
                  "  # sanitize: allow(unseeded-rng)\n")
        assert lint_source(source, strict=True) == []
        unsuppressed = ("import numpy as np\n"
                        "rng = np.random.default_rng()\n")
        [f] = lint_source(unsuppressed, strict=True)
        assert f.rule == "unseeded-rng" and f.line == 2

    def test_seeded_generator_methods_not_flagged(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng(7)\n"
                  "order = rng.permutation(8)\n")
        assert lint_source(source, strict=True) == []

    def test_syntax_error_becomes_parse_error_finding(self):
        [f] = lint_source("def broken(:\n", path="x.py")
        assert f.rule == "parse-error"

    def test_finding_str_format(self):
        [f] = lint_source("try:\n    pass\nexcept:\n    pass\n",
                          path="m.py", strict=False)
        assert str(f).startswith("m.py:3: [bare-except]")

    def test_src_repro_is_lint_clean(self):
        findings = lint_paths()
        assert findings == [], "\n".join(str(f) for f in findings)


class TestAudits:
    def test_clean_audit_zero_violations_both_engines(self):
        report = run_clean_audit(ops=128, seed=0)
        assert report["ok"], report
        assert report["injected_events"] > 0
        assert {"kernels[warp]", "kernels[cohort]", "resize",
                "faults"} <= set(report["phases"])
        for phase in report["phases"].values():
            assert phase["ok"] and not phase["violations"]
            assert phase["subtable_locks_held"] == 0

    def test_engines_see_identical_access_streams(self):
        """Conformance dividend: both engines log identical counts."""
        report = run_clean_audit(ops=128, seed=3,
                                 engines=("warp", "cohort"))
        sw = report["phases"]["kernels[warp]"]["stats"]
        sc = report["phases"]["kernels[cohort]"]["stats"]
        for key in ("accesses", "words_checked", "lock_acquires",
                    "lock_releases", "rounds", "kernels"):
            assert sw[key] == sc[key], key

    def test_cli_fixture_and_lint_phases(self, capsys):
        assert main(["sanitize", "--fixtures"]) == 0
        assert main(["sanitize", "--lint"]) == 0
        out = capsys.readouterr().out
        assert "seeded violations detected" in out
        assert "determinism lint" in out
