"""Tests for the device memory manager (multi-tenant modeling)."""

import pytest

from repro.errors import CapacityError, InvalidConfigError
from repro.gpusim import GTX_1050, DeviceMemoryManager
from repro.gpusim.memory_manager import PCIE_BANDWIDTH


def manager():
    return DeviceMemoryManager(device=GTX_1050, reserve_fraction=0.0)


class TestAllocation:
    def test_basic_accounting(self):
        m = manager()
        m.set_allocation("a", 100)
        m.set_allocation("b", 200)
        assert m.resident_bytes == 300
        assert m.free_bytes == m.capacity - 300
        assert m.clients() == ["a", "b"]

    def test_grow_and_shrink(self):
        m = manager()
        m.set_allocation("a", 100)
        m.set_allocation("a", 500)
        assert m.resident_bytes == 500
        m.set_allocation("a", 50)
        assert m.resident_bytes == 50
        assert m.peak_resident_bytes == 500

    def test_free(self):
        m = manager()
        m.set_allocation("a", 100)
        m.free("a")
        assert m.resident_bytes == 0
        assert m.allocation_of("a") is None
        m.free("missing")  # no-op

    def test_single_allocation_over_capacity(self):
        m = manager()
        with pytest.raises(CapacityError):
            m.set_allocation("huge", m.capacity + 1)

    def test_negative_rejected(self):
        m = manager()
        with pytest.raises(InvalidConfigError):
            m.set_allocation("a", -1)

    def test_reserve_fraction_validated(self):
        with pytest.raises(InvalidConfigError):
            DeviceMemoryManager(reserve_fraction=1.0)


class TestSpilling:
    def test_overflow_spills_largest_other(self):
        m = manager()
        half = m.capacity // 2
        m.set_allocation("big", half + 100)
        m.set_allocation("small", 100)
        # "active" needs more than the remaining space: big must spill.
        m.set_allocation("active", half)
        big = m.allocation_of("big")
        assert not big.resident
        assert m.allocation_of("active").resident
        assert m.spill_bytes >= half

    def test_spill_traffic_has_pcie_cost(self):
        m = manager()
        m.set_allocation("x", m.capacity)
        m.set_allocation("y", 1000)
        assert m.spill_seconds == pytest.approx(
            m.spill_bytes / PCIE_BANDWIDTH)
        assert m.spill_seconds > 0

    def test_touching_spilled_structure_restores_it(self):
        m = manager()
        m.set_allocation("x", m.capacity)
        m.set_allocation("y", 1000)          # spills x
        spill_after_evict = m.spill_bytes
        m.set_allocation("x", 1000)          # restore x (now small)
        assert m.allocation_of("x").resident
        assert m.spill_bytes > spill_after_evict  # restore transfer charged

    def test_full_spill_always_resolves(self):
        """Spilling every other tenant always makes room for one that
        fits the device on its own (the over-capacity case is rejected
        up front)."""
        m = manager()
        m.set_allocation("a", int(m.capacity * 0.9))
        m.set_allocation("b", int(m.capacity * 0.9))
        m.set_allocation("a", int(m.capacity * 0.95))
        assert m.allocation_of("a").resident
        assert not m.allocation_of("b").resident
        assert m.resident_bytes <= m.capacity

    def test_report_mentions_spill(self):
        m = manager()
        m.set_allocation("x", m.capacity)
        m.set_allocation("y", 1000)
        text = m.report()
        assert "spilled" in text
        assert "x" in text and "y" in text
