"""Tests for the bucketized subtable storage."""

import numpy as np
import pytest

from repro.core.subtable import Subtable
from repro.errors import InvalidConfigError


def make_filled(n_buckets=8, capacity=4):
    st = Subtable(n_buckets, capacity)
    return st


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidConfigError):
            Subtable(10, 4)

    def test_rejects_zero_capacity(self):
        with pytest.raises(InvalidConfigError):
            Subtable(8, 0)

    def test_initially_empty(self):
        st = Subtable(8, 4)
        assert st.size == 0
        assert st.total_slots == 32
        assert st.filled_factor == 0.0


class TestPlaceRound:
    def test_simple_placement(self):
        st = make_filled()
        buckets = np.array([0, 1, 2])
        codes = np.array([10, 20, 30], dtype=np.uint64)
        vals = np.array([1, 2, 3], dtype=np.uint64)
        updated, placed, full = st.place_round(buckets, codes, vals)
        assert not updated.any()
        assert placed.all()
        assert not full.any()
        assert st.size == 3

    def test_update_existing(self):
        st = make_filled()
        st.place_round(np.array([0]), np.array([10], dtype=np.uint64),
                       np.array([1], dtype=np.uint64))
        updated, placed, full = st.place_round(
            np.array([0]), np.array([10], dtype=np.uint64),
            np.array([99], dtype=np.uint64))
        assert updated.all() and not placed.any()
        assert st.size == 1
        found, values = st.lookup(np.array([0]), np.array([10], dtype=np.uint64))
        assert found[0] and values[0] == 99

    def test_same_bucket_claims_distinct_slots(self):
        st = make_filled(capacity=4)
        buckets = np.zeros(4, dtype=np.int64)
        codes = np.arange(1, 5, dtype=np.uint64)
        vals = codes * 10
        updated, placed, full = st.place_round(buckets, codes, vals)
        assert placed.all()
        assert st.size == 4
        assert sorted(st.keys[0].tolist()) == [1, 2, 3, 4]

    def test_overflow_marks_single_leader(self):
        st = make_filled(capacity=2)
        buckets = np.zeros(4, dtype=np.int64)
        codes = np.arange(1, 5, dtype=np.uint64)
        updated, placed, full = st.place_round(buckets, codes, codes)
        assert placed.sum() == 2       # capacity
        assert full.sum() == 0         # bucket had free slots this round
        # Second round on the now-full bucket: exactly one leader.
        codes2 = np.array([8, 9], dtype=np.uint64)
        updated, placed, full = st.place_round(np.zeros(2, dtype=np.int64),
                                               codes2, codes2)
        assert not placed.any()
        assert full.sum() == 1

    def test_empty_input(self):
        st = make_filled()
        updated, placed, full = st.place_round(
            np.array([], dtype=np.int64), np.array([], dtype=np.uint64),
            np.array([], dtype=np.uint64))
        assert len(updated) == len(placed) == len(full) == 0


class TestLookupEraseSwap:
    def test_lookup_miss(self):
        st = make_filled()
        found, _ = st.lookup(np.array([3]), np.array([42], dtype=np.uint64))
        assert not found[0]

    def test_contains(self):
        st = make_filled()
        st.place_round(np.array([1]), np.array([5], dtype=np.uint64),
                       np.array([50], dtype=np.uint64))
        assert st.contains(np.array([1]), np.array([5], dtype=np.uint64))[0]
        assert not st.contains(np.array([1]), np.array([6], dtype=np.uint64))[0]

    def test_erase(self):
        st = make_filled()
        st.place_round(np.array([2]), np.array([7], dtype=np.uint64),
                       np.array([70], dtype=np.uint64))
        erased = st.erase(np.array([2]), np.array([7], dtype=np.uint64))
        assert erased[0]
        assert st.size == 0
        found, _ = st.lookup(np.array([2]), np.array([7], dtype=np.uint64))
        assert not found[0]

    def test_erase_miss(self):
        st = make_filled()
        erased = st.erase(np.array([2]), np.array([7], dtype=np.uint64))
        assert not erased[0]
        assert st.size == 0

    def test_swap_slot_returns_old(self):
        st = make_filled()
        st.place_round(np.array([0]), np.array([11], dtype=np.uint64),
                       np.array([110], dtype=np.uint64))
        slot = int(np.flatnonzero(st.keys[0] == 11)[0])
        old_codes, old_values = st.swap_slot(
            np.array([0]), np.array([slot]),
            np.array([22], dtype=np.uint64), np.array([220], dtype=np.uint64))
        assert old_codes[0] == 11 and old_values[0] == 110
        assert st.size == 1  # net unchanged
        assert st.contains(np.array([0]), np.array([22], dtype=np.uint64))[0]


class TestRebuildAndExport:
    def test_export_round_trip(self):
        st = make_filled(n_buckets=4, capacity=4)
        buckets = np.array([0, 1, 1, 3])
        codes = np.array([1, 2, 3, 4], dtype=np.uint64)
        vals = codes * 10
        st.place_round(buckets, codes, vals)
        out_codes, out_values, out_buckets = st.export_entries()
        order = np.argsort(out_codes)
        assert out_codes[order].tolist() == [1, 2, 3, 4]
        assert out_values[order].tolist() == [10, 20, 30, 40]
        assert out_buckets[order].tolist() == [0, 1, 1, 3]

    def test_rebuild_packs_buckets(self):
        st = make_filled(n_buckets=4, capacity=4)
        codes = np.array([5, 6, 7], dtype=np.uint64)
        vals = codes * 2
        st.rebuild(8, codes, vals, np.array([7, 7, 0]))
        assert st.n_buckets == 8
        assert st.size == 3
        assert sorted(st.keys[7][:2].tolist()) == [5, 6]
        assert st.keys[0][0] == 7
        st.validate()

    def test_rebuild_rejects_overflow(self):
        st = make_filled(n_buckets=4, capacity=2)
        codes = np.arange(1, 4, dtype=np.uint64)
        with pytest.raises(InvalidConfigError):
            st.rebuild(4, codes, codes, np.zeros(3, dtype=np.int64))

    def test_validate_catches_bad_counter(self):
        st = make_filled()
        st.size = 5
        with pytest.raises(AssertionError):
            st.validate()
