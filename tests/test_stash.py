"""Stash (overflow error table) semantics and lifecycle regressions.

The stash absorbs inserts whose eviction chain is exhausted while the
insert-failure upsize itself fails — reachable only under injected
resize aborts.  These tests pin down the unit behaviour of
:class:`repro.core.stash.Stash` and the table-level guarantees: stash
contents survive ``copy()``, ``merge_from()`` and persistence, every
reader is stash-aware, and drain-back after a successful resize empties
the stash losslessly.
"""

import numpy as np

from .conftest import unique_keys
from repro.core.config import DyCuckooConfig
from repro.core.persistence import load_table, save_table
from repro.core.stash import Stash
from repro.core.table import DyCuckooTable
from repro.faults import NO_FAULTS, FaultPlan


def make_stashed_table(n_keys: int = 24, stash_capacity: int = 256):
    """A table with ``n_keys`` entries parked in the stash.

    Every eviction chain is declared exhausted and every upsize aborts,
    so each fresh insert lands in the stash; the plan is then detached
    so follow-up operations run fault-free.
    """
    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=16, bucket_capacity=8, min_buckets=8,
        stash_capacity=stash_capacity))
    table.set_fault_plan(FaultPlan(seed=0, rates={
        "insert.evict": 1.0, "resize.abort.trigger": 1.0}))
    keys = unique_keys(n_keys, seed=7)
    table.insert(keys, keys + np.uint64(100))
    assert len(table.stash) == n_keys
    table.set_fault_plan(None)
    return table, keys


class TestStashUnit:
    def test_push_lookup_erase(self):
        stash = Stash(8)
        codes = np.array([3, 5, 9], dtype=np.uint64)
        values = np.array([30, 50, 90], dtype=np.uint64)
        absorbed = stash.push(codes, values)
        assert bool(absorbed.all()) and len(stash) == 3
        found_values, found = stash.lookup(
            np.array([5, 6], dtype=np.uint64))
        assert bool(found[0]) and not bool(found[1])
        assert int(found_values[0]) == 50
        erased = stash.erase(np.array([5, 5, 7], dtype=np.uint64))
        assert erased.tolist() == [True, False, False]
        assert len(stash) == 2 and 5 not in stash

    def test_push_overflow_mask(self):
        stash = Stash(2)
        codes = np.arange(1, 5, dtype=np.uint64)
        absorbed = stash.push(codes, codes)
        assert int(absorbed.sum()) == 2
        assert len(stash) == 2
        stash.validate()

    def test_update_in_place_does_not_consume_capacity(self):
        stash = Stash(2)
        codes = np.array([1, 2], dtype=np.uint64)
        stash.push(codes, codes)
        # Re-pushing an already-stashed key updates it without needing
        # a free slot.
        absorbed = stash.push(np.array([1], dtype=np.uint64),
                              np.array([11], dtype=np.uint64))
        assert bool(absorbed.all()) and len(stash) == 2
        values, found = stash.lookup(np.array([1], dtype=np.uint64))
        assert bool(found[0]) and int(values[0]) == 11

    def test_high_water_and_copy_independence(self):
        stash = Stash(8)
        stash.push(np.arange(1, 6, dtype=np.uint64),
                   np.arange(1, 6, dtype=np.uint64))
        assert stash.high_water == 5
        clone = stash.copy()
        stash.pop_all()
        assert len(stash) == 0 and len(clone) == 5
        assert stash.high_water == 5  # high-water survives pop
        clone.validate()

    def test_zero_capacity_stash(self):
        stash = Stash(0)
        absorbed = stash.push(np.array([1], dtype=np.uint64),
                              np.array([1], dtype=np.uint64))
        assert not bool(absorbed.any())
        assert len(stash) == 0


class TestTableReadersAreStashAware:
    def test_len_items_keys_to_dict_include_stash(self):
        table, keys = make_stashed_table()
        assert len(table) == len(keys)
        out_keys, out_values = table.items()
        assert len(out_keys) == len(keys)
        assert set(table.keys().tolist()) == set(keys.tolist())
        expected = {int(k): int(k) + 100 for k in keys}
        assert table.to_dict() == expected

    def test_clear_resets_stash(self):
        table, _keys = make_stashed_table()
        table.clear()
        assert len(table.stash) == 0 and len(table) == 0
        table.validate()


class TestLifecyclePreservesStash:
    def test_copy_preserves_stash_and_detaches_faults(self):
        table, keys = make_stashed_table()
        table.set_fault_plan(FaultPlan(seed=1, rates={}))
        clone = table.copy()
        assert clone.faults is NO_FAULTS
        assert len(clone.stash) == len(keys)
        assert clone.to_dict() == table.to_dict()
        # Independence: mutating the clone's stash leaves the original.
        clone.delete(keys[:4])
        assert len(clone) == len(keys) - 4
        assert len(table) == len(keys)

    def test_merge_from_transfers_stashed_keys(self):
        table, keys = make_stashed_table()
        dest = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8))
        extra = unique_keys(10, seed=99)
        dest.insert(extra, extra)
        dest.merge_from(table)
        assert len(dest) == len(keys) + len(extra)
        values, found = dest.find(keys)
        assert bool(found.all())
        assert np.array_equal(values, keys + np.uint64(100))
        dest.validate()

    def test_persistence_round_trip_preserves_stash(self, tmp_path):
        table, keys = make_stashed_table()
        path = tmp_path / "stashed.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert len(loaded) == len(table)
        assert loaded.to_dict() == table.to_dict()
        values, found = loaded.find(keys)
        assert bool(found.all())
        assert np.array_equal(values, keys + np.uint64(100))
        loaded.validate()

    def test_persistence_of_stashless_table_unchanged(self, tmp_path):
        table = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8))
        keys = unique_keys(50, seed=3)
        table.insert(keys, keys)
        path = tmp_path / "plain.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert len(loaded.stash) == 0
        assert loaded.to_dict() == table.to_dict()


class TestDrainBack:
    def test_manual_upsize_drains_stash(self):
        table, keys = make_stashed_table()
        table.upsize()
        assert len(table.stash) == 0
        assert table.stats.stash_drained == len(keys)
        values, found = table.find(keys)
        assert bool(found.all())
        assert np.array_equal(values, keys + np.uint64(100))
        table.validate()

    def test_next_mutating_batch_drains_after_resize_epoch(self):
        table, keys = make_stashed_table()
        # A fresh insert heavy enough to push theta over beta triggers a
        # real upsize inside the batch, after which the stash drains.
        fresh = unique_keys(600, seed=42, low=1 << 32)
        table.insert(fresh, fresh)
        assert table.stats.upsizes >= 1
        assert len(table.stash) == 0
        values, found = table.find(keys)
        assert bool(found.all())
        table.validate()

    def test_drain_is_idempotent_per_epoch(self):
        table, keys = make_stashed_table()
        table.upsize()
        drained_after_first = table.stats.stash_drained
        assert drained_after_first == len(keys)
        # Further batches in the same epoch must not re-drain.
        probe = unique_keys(5, seed=5, low=1 << 40)
        table.insert(probe, probe)
        table.delete(probe)
        assert table.stats.stash_drained == drained_after_first
