"""Tests for dataset surrogates and the dynamic batch protocol."""

import numpy as np
import pytest

from repro.errors import InvalidConfigError
from repro.workloads import (ALL_DATASETS, COM, RAND, TW, DatasetSpec,
                             DynamicWorkload, Operation, dataset_by_name,
                             hot_cold_keys, zipf_keys)


class TestDatasetSpecs:
    def test_table2_statistics(self):
        """The specs carry the exact Table-2 numbers."""
        by_name = {s.name: s for s in ALL_DATASETS}
        assert by_name["TW"].total_pairs == 50_876_784
        assert by_name["TW"].unique_keys == 44_523_684
        assert by_name["RE"].total_pairs == 48_104_875
        assert by_name["RE"].unique_keys == 41_466_682
        assert by_name["LINE"].total_pairs == 50_000_000
        assert by_name["LINE"].unique_keys == 45_159_880
        assert by_name["COM"].total_pairs == 10_000_000
        assert by_name["COM"].unique_keys == 4_583_941
        assert by_name["RAND"].total_pairs == 100_000_000
        assert by_name["RAND"].unique_keys == 100_000_000

    @pytest.mark.parametrize("spec", ALL_DATASETS, ids=lambda s: s.name)
    def test_generated_statistics_match(self, spec):
        keys, values = spec.generate(scale=0.001, seed=7)
        total = round(spec.total_pairs * 0.001)
        unique = min(total, round(spec.unique_keys * 0.001))
        assert len(keys) == total
        assert len(np.unique(keys)) == unique
        counts = np.unique(keys, return_counts=True)[1]
        assert counts.max() <= spec.max_duplicates
        assert len(values) == total

    def test_rand_is_fully_unique(self):
        keys, _ = RAND.generate(scale=0.0005, seed=1)
        assert len(np.unique(keys)) == len(keys)

    def test_com_is_skewed(self):
        """COM has celebrity keys near the duplicate cap."""
        keys, _ = COM.generate(scale=0.01, seed=2)
        counts = np.unique(keys, return_counts=True)[1]
        assert counts.max() >= COM.max_duplicates - 2

    def test_deterministic_by_seed(self):
        k1, v1 = TW.generate(scale=0.0005, seed=9)
        k2, v2 = TW.generate(scale=0.0005, seed=9)
        assert np.array_equal(k1, k2)
        assert np.array_equal(v1, v2)
        k3, _ = TW.generate(scale=0.0005, seed=10)
        assert not np.array_equal(k1, k3)

    def test_dataset_by_name(self):
        assert dataset_by_name("com") is COM
        with pytest.raises(KeyError):
            dataset_by_name("nope")

    def test_scale_validation(self):
        with pytest.raises(InvalidConfigError):
            TW.generate(scale=0.0)

    def test_impossible_duplicates_rejected(self):
        spec = DatasetSpec("BAD", 100, 10, max_duplicates=2, skew=0.0)
        with pytest.raises(InvalidConfigError):
            spec.generate(scale=1.0)


class TestDynamicWorkload:
    def _workload(self, n=1000, batch=100, r=0.2, seed=0):
        rng = np.random.default_rng(seed)
        keys = rng.permutation(np.arange(1, n + 1, dtype=np.uint64))
        values = keys * np.uint64(2)
        return DynamicWorkload(keys, values, batch_size=batch, ratio_r=r,
                               seed=seed)

    def test_two_phases(self):
        wl = self._workload()
        batches = list(wl.batches())
        assert len(batches) == 2 * wl.num_batches
        assert all(b.phase == 1 for b in batches[:wl.num_batches])
        assert all(b.phase == 2 for b in batches[wl.num_batches:])

    def test_phase1_structure(self):
        wl = self._workload(n=1000, batch=100, r=0.3)
        batch = next(wl.batches())
        kinds = [op.kind for op in batch.operations]
        assert kinds == ["insert", "find", "delete"]
        sizes = {op.kind: len(op) for op in batch.operations}
        assert sizes["insert"] == 100
        assert sizes["find"] == 100
        assert sizes["delete"] == 30

    def test_phase2_swaps_insert_and_delete(self):
        wl = self._workload(n=300, batch=100, r=0.2)
        batches = list(wl.batches())
        phase2 = batches[wl.num_batches]
        kinds = [op.kind for op in phase2.operations]
        assert kinds == ["delete", "find", "insert"]
        sizes = {op.kind: len(op) for op in phase2.operations}
        assert sizes["delete"] == 100
        assert sizes["insert"] == 20

    def test_phase2_deletes_are_phase1_inserts(self):
        wl = self._workload(n=300, batch=100)
        batches = list(wl.batches())
        p1_inserts = batches[0].operations[0].keys
        p2_deletes = batches[wl.num_batches].operations[0].keys
        assert np.array_equal(p1_inserts, p2_deletes)

    def test_zero_ratio(self):
        wl = self._workload(r=0.0)
        batch = next(wl.batches())
        assert [op.kind for op in batch.operations] == ["insert", "find"]

    def test_find_targets_inserted_prefix(self):
        wl = self._workload(n=500, batch=100)
        first = next(wl.batches())
        find_op = first.operations[1]
        inserted = set(wl.keys[:100].tolist())
        assert set(find_op.keys.tolist()) <= inserted

    def test_validation(self):
        keys = np.arange(10, dtype=np.uint64)
        with pytest.raises(InvalidConfigError):
            DynamicWorkload(keys, keys, batch_size=0)
        with pytest.raises(InvalidConfigError):
            DynamicWorkload(keys, keys[:5], batch_size=2)
        with pytest.raises(InvalidConfigError):
            DynamicWorkload(keys, keys, batch_size=2, ratio_r=-1)

    def test_operation_validation(self):
        with pytest.raises(InvalidConfigError):
            Operation("insert", np.arange(3, dtype=np.uint64))
        with pytest.raises(InvalidConfigError):
            Operation("upsert", np.arange(3, dtype=np.uint64))


class TestSkewGenerators:
    def test_zipf_concentration(self):
        keys = zipf_keys(50_000, num_distinct=1000, exponent=1.2, seed=0)
        _, counts = np.unique(keys, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / len(keys)
        assert top_share > 0.2  # top-10 keys dominate

    def test_zipf_validation(self):
        with pytest.raises(InvalidConfigError):
            zipf_keys(10, 0)
        with pytest.raises(InvalidConfigError):
            zipf_keys(10, 10, exponent=0)

    def test_hot_cold_split(self):
        keys = hot_cold_keys(10_000, num_hot=5, hot_fraction=0.6, seed=1)
        hot_mask = keys <= 5
        assert 0.55 < hot_mask.mean() < 0.65

    def test_hot_cold_validation(self):
        with pytest.raises(InvalidConfigError):
            hot_cold_keys(10, 2, hot_fraction=1.5)


def chi_square_critical(df: int, z: float = 2.326) -> float:
    """Wilson-Hilferty approximation of the chi-square 99th percentile.

    Accurate to a fraction of a percent for df >= 10 — scipy-free, and
    these tests run fixed seeds so the comparison is deterministic
    anyway; the critical value just documents *how* close the fit is.
    """
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * np.sqrt(h)) ** 3


class TestSkewGoodnessOfFit:
    """The generated hot-key distribution matches its nominal Zipf law.

    ``zipf_keys`` shuffles which key gets which rank, so the fit is
    checked on the *sorted* count profile against the sorted expected
    profile: near-equal tail ranks may swap labels, but that barely
    moves the statistic, while a wrong exponent or a broken weight
    normalization moves it by orders of magnitude.
    """

    NUM_OPS = 60_000
    NUM_DISTINCT = 50

    def observed_profile(self, exponent: float, seed: int) -> np.ndarray:
        keys = zipf_keys(self.NUM_OPS, self.NUM_DISTINCT,
                         exponent=exponent, seed=seed)
        _, counts = np.unique(keys, return_counts=True)
        profile = np.zeros(self.NUM_DISTINCT)
        profile[:len(counts)] = np.sort(counts)[::-1]
        return profile

    def expected_profile(self, exponent: float) -> np.ndarray:
        ranks = np.arange(1, self.NUM_DISTINCT + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        return self.NUM_OPS * weights / weights.sum()

    @pytest.mark.parametrize("exponent", [1.05, 1.2, 1.5])
    def test_zipf_fits_nominal_parameters(self, exponent):
        observed = self.observed_profile(exponent, seed=42)
        expected = self.expected_profile(exponent)
        statistic = ((observed - expected) ** 2 / expected).sum()
        assert statistic < chi_square_critical(self.NUM_DISTINCT - 1), (
            f"chi2={statistic:.1f} for exponent {exponent}")

    def test_wrong_exponent_is_rejected(self):
        """The same statistic must *detect* a mismatched law, or the
        goodness-of-fit test above proves nothing."""
        observed = self.observed_profile(1.5, seed=42)
        expected = self.expected_profile(1.05)
        statistic = ((observed - expected) ** 2 / expected).sum()
        assert statistic > chi_square_critical(self.NUM_DISTINCT - 1)

    def test_hot_cold_fraction_fits_binomial(self):
        """Hot-op share within 3 sigma of the nominal fraction."""
        num_ops, fraction = 40_000, 0.3
        keys = hot_cold_keys(num_ops, num_hot=8, hot_fraction=fraction,
                             seed=9)
        hot_share = (keys <= 8).mean()
        sigma = np.sqrt(fraction * (1 - fraction) / num_ops)
        assert abs(hot_share - fraction) < 3 * sigma + 1 / num_ops

    def test_deterministic_under_fixed_seed(self):
        a = zipf_keys(5_000, 100, exponent=1.1, seed=123)
        b = zipf_keys(5_000, 100, exponent=1.1, seed=123)
        assert np.array_equal(a, b)
        c = hot_cold_keys(5_000, 10, hot_fraction=0.5, seed=123)
        d = hot_cold_keys(5_000, 10, hot_fraction=0.5, seed=123)
        assert np.array_equal(c, d)

    def test_seed_changes_stream(self):
        a = zipf_keys(5_000, 100, exponent=1.1, seed=1)
        b = zipf_keys(5_000, 100, exponent=1.1, seed=2)
        assert not np.array_equal(a, b)


class TestLivePoolProtocol:
    """The delete targets of phase 1 come from the live key pool."""

    def test_phase1_deletes_mostly_hit(self):
        rng = np.random.default_rng(0)
        keys = rng.permutation(np.arange(1, 2001, dtype=np.uint64))
        wl = DynamicWorkload(keys, keys, batch_size=200, ratio_r=0.5, seed=1)
        from repro.baselines import DyCuckooAdapter
        from repro.core.config import DyCuckooConfig

        table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                               bucket_capacity=8))
        hits = total = 0
        for batch in wl.batches():
            if batch.phase != 1:
                break
            for op in batch.operations:
                if op.kind == "insert":
                    table.insert(op.keys, op.values)
                elif op.kind == "delete":
                    removed = table.delete(op.keys)
                    hits += int(removed.sum())
                    total += len(op)
        # Live-pool sampling makes deletes nearly always effective
        # (duplicate dataset keys can cause a few misses).
        assert total > 0
        assert hits / total > 0.9

    def test_delete_volume_scales_with_r(self):
        rng = np.random.default_rng(1)
        keys = rng.permutation(np.arange(1, 1001, dtype=np.uint64))

        def delete_count(r):
            wl = DynamicWorkload(keys, keys, batch_size=100, ratio_r=r,
                                 seed=2)
            return sum(len(op) for b in wl.batches() if b.phase == 1
                       for op in b.operations if op.kind == "delete")

        assert delete_count(0.5) == pytest.approx(delete_count(0.1) * 5,
                                                  rel=0.05)
