#!/usr/bin/env python3
"""Relational hash join on the (simulated) GPU using DyCuckoo.

Hash joins are the canonical database consumer of GPU hash tables (the
paper's related-work section cites a line of GPU join systems).  This
example joins a TPC-H-like ``lineitem`` fact stream against an ``orders``
build side:

1. build: insert the orders (order key -> customer id) into DyCuckoo;
2. probe: stream lineitem batches, looking up each row's order key;
3. incremental maintenance: orders are cancelled and new orders arrive
   between probe waves — a static table would need a full rebuild, the
   dynamic table just upserts/deletes.

Run:  python examples/hash_join.py
"""

import numpy as np

from repro import DyCuckooConfig, DyCuckooTable
from repro.workloads import LINE


def main() -> None:
    rng = np.random.default_rng(42)

    # Build side: 100k orders with random customer ids.
    n_orders = 100_000
    order_keys = rng.permutation(np.arange(1, n_orders + 1,
                                           dtype=np.uint64))
    customer_ids = rng.integers(1, 10_000, n_orders).astype(np.uint64)

    table = DyCuckooTable(DyCuckooConfig(initial_buckets=64,
                                         bucket_capacity=32))
    table.insert(order_keys, customer_ids)
    print(f"build side: {len(table):,} orders at "
          f"{table.load_factor:.1%} filled factor")

    # Probe side: lineitem-like stream referencing the orders (some rows
    # reference cancelled/unknown orders and must not match).
    lineitem_keys, _ = LINE.generate(scale=0.002, seed=1)
    probe_keys = (lineitem_keys % np.uint64(n_orders * 2)) + np.uint64(1)

    matches = 0
    for start in range(0, len(probe_keys), 10_000):
        batch = probe_keys[start:start + 10_000]
        _customer, found = table.find(batch)
        matches += int(found.sum())
    print(f"probe wave 1: {len(probe_keys):,} lineitem rows, "
          f"{matches:,} matched ({matches / len(probe_keys):.0%})")

    # Incremental maintenance between waves: 30% of orders cancel, 20%
    # new orders arrive.  No rebuild — the table resizes itself.
    cancelled = rng.choice(order_keys, n_orders * 3 // 10, replace=False)
    table.delete(cancelled)
    new_orders = np.arange(n_orders + 1, n_orders + n_orders // 5 + 1,
                           dtype=np.uint64)
    table.insert(new_orders,
                 rng.integers(1, 10_000, len(new_orders)).astype(np.uint64))
    print(f"maintenance: -{len(cancelled):,} cancelled, "
          f"+{len(new_orders):,} new; filled factor "
          f"{table.load_factor:.1%}, {table.stats.upsizes} upsizes / "
          f"{table.stats.downsizes} downsizes so far")

    before = table.stats.snapshot()
    matches2 = 0
    for start in range(0, len(probe_keys), 10_000):
        batch = probe_keys[start:start + 10_000]
        _customer, found = table.find(batch)
        matches2 += int(found.sum())
    probe_delta = table.stats.delta(before)
    print(f"probe wave 2: {matches2:,} matched "
          f"(match-rate shifted with the order book, no rebuild needed)")

    table.validate()
    reads_per_probe = probe_delta["bucket_reads"] / len(probe_keys)
    print(f"\naverage bucket reads per probe in wave 2: "
          f"{reads_per_probe:.2f} (two-layer guarantee: <= 2)")


if __name__ == "__main__":
    main()
