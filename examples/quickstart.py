#!/usr/bin/env python3
"""Quickstart: the DyCuckoo public API in five minutes.

Builds a dynamic hash table, runs batched upserts/lookups/deletes, and
shows the structure resizing itself to keep the filled factor inside
the configured bounds — the paper's core promise.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DyCuckooConfig, DyCuckooTable


def main() -> None:
    # d=4 subtables, 32-slot buckets, filled factor kept in [30%, 85%].
    config = DyCuckooConfig(num_tables=4, bucket_capacity=32,
                            initial_buckets=64, alpha=0.30, beta=0.85)
    table = DyCuckooTable(config)

    # --- batched insert (the natural GPU granularity) ------------------
    keys = np.arange(0, 200_000, dtype=np.uint64)
    values = keys * np.uint64(7)
    table.insert(keys, values)
    print(f"inserted {len(table):,} entries; filled factor "
          f"{table.load_factor:.1%} (bounds [{config.alpha:.0%}, "
          f"{config.beta:.0%}])")
    print(f"subtable sizes (buckets): "
          f"{[st.n_buckets for st in table.subtables]}")

    # --- batched find: at most two bucket probes per key ----------------
    probe = np.array([0, 123_456, 999_999_999], dtype=np.uint64)
    found_values, found = table.find(probe)
    for key, value, hit in zip(probe, found_values, found):
        print(f"find({key}) -> {'hit, value=' + str(int(value)) if hit else 'miss'}")

    # --- upsert: existing keys update in place --------------------------
    table.insert(np.array([42], dtype=np.uint64),
                 np.array([4242], dtype=np.uint64))
    print(f"after upsert, find(42) = {table.get(42)} "
          f"(size unchanged: {len(table):,})")

    # --- batched delete: the table shrinks to stay above alpha ----------
    slots_before = table.total_slots
    removed = table.delete(keys[:180_000])
    print(f"deleted {int(removed.sum()):,} entries; filled factor "
          f"{table.load_factor:.1%}; allocated slots "
          f"{slots_before:,} -> {table.total_slots:,} "
          f"({table.stats.downsizes} downsizes, one subtable at a time)")

    # --- stats: the event counters behind the paper's cost analysis -----
    interesting = {k: v for k, v in table.stats.snapshot().items() if v}
    print("\noperation counters:")
    for name, value in sorted(interesting.items()):
        print(f"  {name:>20}: {value:,}")

    table.validate()  # structural invariants hold
    print("\nvalidate(): all invariants hold")


if __name__ == "__main__":
    main()
