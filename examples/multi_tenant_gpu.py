#!/usr/bin/env python3
"""Multi-tenant GPU: why over-allocated static tables hurt neighbours.

The paper's introduction argues that a static hash table "occupies an
unnecessarily large memory space" and forces other GPU-resident
structures into expensive PCIe round-trips.  This example simulates a
GPU running three tenants:

1. a hash table (DyCuckoo or a statically over-provisioned MegaKV),
2. a feature matrix for an ML model,
3. a graph adjacency structure,

on a small (2 GB) device.  As the hash table's workload grows and
shrinks, the :class:`DeviceMemoryManager` tracks residency: structures
spill to the host when the device is over-committed, and the spilled
bytes (PCIe traffic) are the price of the hash table's footprint.

Run:  python examples/multi_tenant_gpu.py
"""

import numpy as np

from repro.baselines import DyCuckooAdapter, MegaKVTable
from repro.core.config import DyCuckooConfig
from repro.gpusim import GTX_1050, DeviceMemoryManager

#: Fixed tenants sharing the device with the hash table.
ML_FEATURES_BYTES = 900 * 10 ** 6
GRAPH_BYTES = 700 * 10 ** 6


def run_session(label: str, table_factory) -> None:
    manager = DeviceMemoryManager(device=GTX_1050)
    manager.set_allocation("ml-features", ML_FEATURES_BYTES)
    manager.set_allocation("graph", GRAPH_BYTES)

    table = table_factory()
    rng = np.random.default_rng(1)
    # Grow to ~8M entries, then shrink back to 1M, in ten steps each.
    live = np.zeros(0, dtype=np.uint64)
    for step in range(10):
        fresh = rng.integers(1, 1 << 62, 800_000).astype(np.uint64)
        table.insert(fresh, fresh)
        live = np.concatenate([live, fresh])
        manager.set_allocation(label, table.memory_footprint().total_bytes)
    for step in range(9):
        table.delete(live[step * 800_000:(step + 1) * 800_000])
        manager.set_allocation(label, table.memory_footprint().total_bytes)

    print(f"--- {label} ---")
    print(manager.report())
    print(f"peak residency: {manager.peak_resident_bytes / 1e6:.0f} MB; "
          f"PCIe spill traffic: {manager.spill_bytes / 1e6:.0f} MB "
          f"({manager.spill_seconds * 1e3:.1f} ms of bus time)")
    print()


def main() -> None:
    print(f"device: {GTX_1050.name} "
          f"({GTX_1050.device_memory_bytes / 2**30:.0f} GB)\n")

    # DyCuckoo sizes itself to the live data.
    run_session("DyCuckoo", lambda: DyCuckooAdapter(
        DyCuckooConfig(initial_buckets=64)))

    # The static deployment model: provision MegaKV for the peak up
    # front (8M entries at 50% fill) and never resize.
    static_buckets = 1 << 21  # 2 subtables x 2M buckets x 8 slots
    run_session("MegaKV-static", lambda: MegaKVTable(
        initial_buckets=static_buckets, auto_resize=False))

    print("DyCuckoo returns memory as its load shrinks, so the other")
    print("tenants stay resident; the statically-provisioned table keeps")
    print("its peak allocation forever and the neighbours pay in PCIe")
    print("round-trips — the motivation of the paper's Section I.")


if __name__ == "__main__":
    main()
