#!/usr/bin/env python3
"""Memory budgeting: why dynamic tables matter for coexisting structures.

The paper's introduction argues that static GPU hash tables hog device
memory and force expensive PCIe shuffling when several structures must
share one GPU.  This example plays a grow-then-shrink session through
DyCuckoo, MegaKV (with the naive double/half strategy) and SlabHash
(symbolic deletion), and reports each structure's peak and final device
memory — reproducing the paper's headline "up to 4x memory saved".

It then turns the measurement into a *policy*: the same session runs
under :class:`repro.core.MemoryBudget`, which evicts seeded victim
batches whenever the footprint crosses a hard byte budget (the table
degrades to a cache under pressure; see ``docs/scenarios.md``).

Run:  python examples/memory_budget.py
Seed: honors ``REPRO_SEED`` (default 3) — same seed, same output.
"""

import os

import numpy as np

from repro.baselines import DyCuckooAdapter, MegaKVTable, SlabHashTable
from repro.baselines.slab import slab_buckets_for_fill
from repro.bench import format_table, run_dynamic
from repro.core import MemoryBudget
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.gpusim.metrics import CostModel
from repro.workloads import COM, DynamicWorkload

SCALE = 0.004  # 1/250 of the paper's COM dataset
SEED = int(os.environ.get("REPRO_SEED", "3"))


def main() -> None:
    keys, values = COM.generate(scale=SCALE, seed=SEED)
    unique = len(np.unique(keys))
    print(f"COM surrogate: {len(keys):,} events over "
          f"{unique:,} customers (heavy skew), seed {SEED}\n")

    cost_model = CostModel(overhead_scale=SCALE)
    rows = []
    for factory in (
            lambda: DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                                   bucket_capacity=16)),
            lambda: MegaKVTable(initial_buckets=16),
            # SlabHash sized for the default 85% fill, like every other
            # approach (give it more buckets and it trades memory for
            # speed — the trade the paper calls out).
            lambda: SlabHashTable(
                n_buckets=slab_buckets_for_fill(unique // 2, 0.85))):
        table = factory()
        # SEED ^ 2 keeps the historical workload stream (seed 1) for
        # the default dataset seed 3 while still tracking REPRO_SEED.
        workload = DynamicWorkload(keys, values, batch_size=4000,
                                   ratio_r=0.2, seed=SEED ^ 2)
        result = run_dynamic(table, workload, cost_model=cost_model)
        footprint = table.memory_footprint()
        rows.append([
            table.NAME,
            result.mops,
            result.peak_memory_bytes / 1e6,
            footprint.total_bytes / 1e6,
            f"{min(result.fill_series):.2f}-{max(result.fill_series):.2f}",
        ])

    print(format_table(
        ["approach", "Mops", "peak MB", "final MB", "fill range"],
        rows, title="grow-then-shrink session (COM surrogate)",
        float_fmt="{:.2f}"))

    dy_peak = rows[0][2]
    worst_peak = max(row[2] for row in rows[1:])
    print(f"\nDyCuckoo peak memory vs worst baseline: "
          f"{worst_peak / dy_peak:.1f}x saved")
    print("A second structure sharing the GPU gets that headroom back —")
    print("no PCIe round-trips to evict the hash table.")

    # ------------------------------------------------------------------
    # The policy version: hold the same session under a hard budget.
    # ------------------------------------------------------------------
    budget_bytes = int(dy_peak * 1e6 * 0.6)
    policy = MemoryBudget(budget_bytes, seed=SEED)
    table = DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                         bucket_capacity=16))
    peak_under_policy = 0
    for start in range(0, len(keys), 4000):
        table.insert(keys[start:start + 4000].astype(np.uint64),
                     values[start:start + 4000].astype(np.uint64))
        if policy.over_budget(table):
            policy.enforce(table)
        peak_under_policy = max(peak_under_policy,
                                table.memory_footprint().total_bytes)
    summary = policy.summary()
    respected = "yes" if summary["violations"] == 0 else "NO"
    print(f"\nmemory-budget policy demo "
          f"(budget {budget_bytes / 1e6:.2f} MB = 60% of peak):")
    print(f"  evicted {summary['evictions']:,} entries over "
          f"{summary['enforcements']} enforcements")
    print(f"  peak under policy {peak_under_policy / 1e6:.2f} MB "
          f"(unconstrained peak {dy_peak:.2f} MB)")
    print(f"  budget respected: {respected}")


if __name__ == "__main__":
    main()
