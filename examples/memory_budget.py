#!/usr/bin/env python3
"""Memory budgeting: why dynamic tables matter for coexisting structures.

The paper's introduction argues that static GPU hash tables hog device
memory and force expensive PCIe shuffling when several structures must
share one GPU.  This example plays a grow-then-shrink session through
DyCuckoo, MegaKV (with the naive double/half strategy) and SlabHash
(symbolic deletion), and reports each structure's peak and final device
memory — reproducing the paper's headline "up to 4x memory saved".

Run:  python examples/memory_budget.py
"""

import numpy as np

from repro.baselines import DyCuckooAdapter, MegaKVTable, SlabHashTable
from repro.baselines.slab import slab_buckets_for_fill
from repro.bench import format_table, run_dynamic
from repro.core.config import DyCuckooConfig
from repro.gpusim.metrics import CostModel
from repro.workloads import COM, DynamicWorkload

SCALE = 0.004  # 1/250 of the paper's COM dataset


def main() -> None:
    keys, values = COM.generate(scale=SCALE, seed=3)
    unique = len(np.unique(keys))
    print(f"COM surrogate: {len(keys):,} events over "
          f"{unique:,} customers (heavy skew)\n")

    cost_model = CostModel(overhead_scale=SCALE)
    rows = []
    for factory in (
            lambda: DyCuckooAdapter(DyCuckooConfig(initial_buckets=8,
                                                   bucket_capacity=16)),
            lambda: MegaKVTable(initial_buckets=16),
            # SlabHash sized for the default 85% fill, like every other
            # approach (give it more buckets and it trades memory for
            # speed — the trade the paper calls out).
            lambda: SlabHashTable(
                n_buckets=slab_buckets_for_fill(unique // 2, 0.85))):
        table = factory()
        workload = DynamicWorkload(keys, values, batch_size=4000,
                                   ratio_r=0.2, seed=1)
        result = run_dynamic(table, workload, cost_model=cost_model)
        footprint = table.memory_footprint()
        rows.append([
            table.NAME,
            result.mops,
            result.peak_memory_bytes / 1e6,
            footprint.total_bytes / 1e6,
            f"{min(result.fill_series):.2f}-{max(result.fill_series):.2f}",
        ])

    print(format_table(
        ["approach", "Mops", "peak MB", "final MB", "fill range"],
        rows, title="grow-then-shrink session (COM surrogate)",
        float_fmt="{:.2f}"))

    dy_peak = rows[0][2]
    worst_peak = max(row[2] for row in rows[1:])
    print(f"\nDyCuckoo peak memory vs worst baseline: "
          f"{worst_peak / dy_peak:.1f}x saved")
    print("A second structure sharing the GPU gets that headroom back —")
    print("no PCIe round-trips to evict the hash table.")


if __name__ == "__main__":
    main()
