#!/usr/bin/env python3
"""Streaming retweet counter — the paper's motivating scenario.

Section V-B motivates the voter scheme with a Twitter workload: track
retweet counts per account for a sliding window; celebrity accounts get
thousands of updates in a burst, and accounts fall out of the window
continuously, so the active key set grows and shrinks.

This example streams a Zipf-skewed event log through a DyCuckoo table:
each minute-batch increments per-account counters (read-modify-write
upserts) and expires accounts inactive for a window, and we watch the
filled factor stay bounded while the structure resizes itself.

Run:  python examples/streaming_retweet_counter.py
"""

import numpy as np

from repro import DyCuckooConfig, DyCuckooTable
from repro.bench import sparkline
from repro.workloads import zipf_keys

WINDOW_MINUTES = 30
MINUTES = 120
EVENTS_PER_MINUTE = 20_000
ACCOUNTS = 400_000


def main() -> None:
    table = DyCuckooTable(DyCuckooConfig(initial_buckets=64,
                                         bucket_capacity=32))
    # Per-minute key sets; expiry removes accounts idle for the window.
    recent_minutes: list[np.ndarray] = []
    fills, sizes = [], []

    for minute in range(MINUTES):
        # A fresh burst of retweet events: heavy Zipf skew means a few
        # celebrity accounts dominate the batch (hot keys).
        events = zipf_keys(EVENTS_PER_MINUTE, num_distinct=ACCOUNTS,
                           exponent=1.1, seed=minute)
        # Simulate a flash event mid-stream: one account gets 30% of
        # all traffic for ten minutes.
        if 60 <= minute < 70:
            burst = np.full(EVENTS_PER_MINUTE * 3 // 10, events[0],
                            dtype=np.uint64)
            events = np.concatenate([events, burst])

        # Read-modify-write: fetch current counts, add this batch's.
        accounts, batch_counts = np.unique(events, return_counts=True)
        current, found = table.find(accounts)
        current[~found] = 0
        table.insert(accounts, current + batch_counts.astype(np.uint64))

        recent_minutes.append(accounts)
        if len(recent_minutes) > WINDOW_MINUTES:
            expired = recent_minutes.pop(0)
            still_active = np.concatenate(recent_minutes)
            to_expire = np.setdiff1d(expired, still_active)
            if len(to_expire):
                table.delete(to_expire)

        fills.append(table.load_factor)
        sizes.append(len(table))

    table.validate()
    print(f"processed {MINUTES} minute-batches "
          f"(~{MINUTES * EVENTS_PER_MINUTE / 1e6:.1f}M events)")
    print(f"active accounts now: {len(table):,}")
    print(f"filled factor: {sparkline(fills, lo=0.0, hi=1.0)} "
          f"min={min(fills):.2f} max={max(fills):.2f}")
    print(f"live entries : {sparkline([float(s) for s in sizes])} "
          f"min={min(sizes):,} max={max(sizes):,}")
    print(f"resizes: {table.stats.upsizes} upsizes, "
          f"{table.stats.downsizes} downsizes "
          f"(each touched one subtable; the rest stayed online)")

    bounds_ok = all(f <= table.config.beta + 1e-9 for f in fills[3:])
    print(f"filled factor stayed <= beta after warm-up: {bounds_ok}")

    # The celebrities are still countable.
    top = zipf_keys(1, num_distinct=ACCOUNTS, exponent=1.1, seed=61)
    count = table.get(int(top[0]))
    if count is not None:
        print(f"hottest account's current window count: {count:,}")


if __name__ == "__main__":
    main()
